"""Compiled search kernel for the MUCE/MaxUC+ hot paths.

The backtracking searches in :mod:`repro.core.enumeration` and
:mod:`repro.core.maximum` are written over :class:`UncertainGraph`'s
dict-of-dicts adjacency: every candidate filter is a per-edge hash lookup
on arbitrary node objects, every branch rebuilds ``(node, pi)`` tuple
lists for both the candidate set *and* the excluded set, and the
in-search (Top_k, tau)-core peel rebuilds sorted probability lists from
scratch at every recursion level.  This module removes that overhead with
a per-component *compilation step*:

1. nodes are mapped to dense ints ``0 .. n-1`` in the library's
   deterministic order, so the compiled id order doubles as the search
   order — computed exactly once per component;
2. adjacency is materialised several ways: CSR-style flat neighbor and
   probability arrays in per-row descending-probability order (the form
   the in-search core peel consumes without any re-sorting), Python-int
   bitmask rows (one ``n``-bit integer per node, so neighbor
   intersections are a single ``&``), dense probability rows (plain float
   lists indexed by node id, ``0.0`` marking non-edges) for small
   components, and int-keyed probability dicts as the large-component
   fallback.

The enumeration core keeps the candidate set ``C`` as a list of
``(id, pi)`` pairs exactly shaped like the legacy loop (measured faster
than bit-extraction for the tree's many small calls) and adds one
mask-powered shortcut the legacy representation cannot afford:

* the excluded set ``X`` is never materialised.  Legacy filters an
  explicit ``X`` list on every branch only to test ``X == empty`` at
  leaves.  The kernel instead maintains ``common``, the intersection of
  ``adj[r]`` over the current clique (one ``&`` per recursion step), and
  a ``banned`` mask of branch-size-pruned candidates (which legacy
  deliberately keeps out of ``X``).  At a leaf (``C`` empty) a node
  ``x`` would sit in legacy's ``X`` iff ``x in common & ~banned`` and
  ``CPr(R) * pi_x(R) >= tau_floor``: every node of the component either
  reached this leaf's ``C`` (impossible — ``C`` is empty), died on an
  adjacency filter (not in ``common``), was branch-size pruned above
  (``banned``), or was passed over/threshold-filtered — and for those the
  incremental compares legacy ran along the path are all implied by the
  final one, because IEEE multiplication by factors ``<= 1`` is monotone
  non-increasing.  Recomputing ``pi_x`` in clique order reproduces
  legacy's float sequence bit for bit, so emission decisions are
  identical while the per-branch ``X`` filtering work disappears
  entirely.

Results are decompiled back to the original node labels, and every float
that influences a decision is produced by the same multiplication
sequence as the legacy code, so outputs, yield order, and the statistics
counters are identical to ``engine="legacy"`` (pinned by
``tests/core/test_kernel_parity.py``).

The entry points are :func:`enumerate_component` (the MUC recursion of
Algorithm 4) and :func:`maximum_component` (the MaxUC+ color-bound
branch-and-bound); both operate on one connected component as produced by
the pruning/cut pipeline.  The pre-search (Top_k, tau)-core itself has a
compiled twin in :func:`repro.core.topk_core.topk_core_arrays`.
"""

from __future__ import annotations

from array import array
from time import perf_counter
from typing import TYPE_CHECKING, Iterator

from repro.core.prune_kernel import CompiledGraph, node_sort_key
from repro.core.topk_core import topk_peel_masks
from repro.deterministic.coloring import greedy_coloring
from repro.uncertain.graph import Node, UncertainGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guards (types only)
    from repro.core.enumeration import EnumerationStats
    from repro.core.maximum import MaximumSearchStats

__all__ = [
    "CompiledComponent",
    "compile_component",
    "derive_component_view",
    "node_sort_key",
    "iter_bits",
    "enumerate_component",
    "enum_root_prep",
    "enumerate_root_range",
    "pivot_root_plan",
    "enumerate_pivot_range",
    "maximum_component",
    "maximum_compiled",
    "KERNEL_COMPONENT_LIMIT",
]

#: Set-bit iteration works through masks 64 bits at a time: each chunk is a
#: machine-word int, so the extraction loop never does big-int arithmetic.
_CHUNK_MASK = 0xFFFFFFFFFFFFFFFF

#: Components up to this many nodes get dense probability rows (n floats
#: per node, 0.0 for non-edges); larger ones fall back to int-keyed dicts
#: to keep compilation O(n + m) and memory bounded.
_DENSE_ROW_LIMIT = 1024

#: Largest component the compiled *enumeration* core accepts.  Above this
#: every bitmask op pays O(n / 64) words even deep in the tree where the
#: candidate sets are tiny (a sparse 9000-node component makes each
#: ``common & adj[u]`` a 141-word operation), which was measured slower
#: than the tuple-list recursion — so the engine dispatch in
#: :mod:`repro.core.enumeration` routes oversized components to the
#: legacy core instead.  Matches :data:`_DENSE_ROW_LIMIT`, so the compiled
#: enumeration always has dense probability rows.
KERNEL_COMPONENT_LIMIT = _DENSE_ROW_LIMIT


#: Conservative relative safety margin on the pivot absorption test.
#: Skipping the branches of an absorbed set ``T`` is sound only when the
#: canonical witness chain of every sub-clique would clear the floor;
#: the greedy absorption computes ``CPr(R + T + {u})`` in its own
#: (incremental) multiplication order, so the skip threshold is raised
#: by more than the worst-case reassociation rounding error (bounded by
#: ``#factors * 2^-53 < 1e-10`` within a component of <= 1024 nodes) —
#: a skip can then never lose a clique the oracle engines would emit.
_PIVOT_SAFETY = 1.0 + 1e-9


class CompiledComponent:
    """One component compiled to dense-int, bitmask and CSR form.

    ``nodes[i]`` is the original label of id ``i``; ids follow the
    library's deterministic node order, so ascending-id iteration
    reproduces the legacy candidate order exactly.  The CSR rows
    (``row_offsets`` / ``nbr_ids`` / ``nbr_probs``) are sorted by
    descending probability (ties by id) so a top-k scan reads a prefix.
    ``bits[i]`` caches ``1 << i`` (big-int shifts are not free), and
    ``rows`` holds the dense probability rows for small components
    (``None`` above :data:`_DENSE_ROW_LIMIT`).

    Compiled components are **picklable** — the process-parallel layer
    (:mod:`repro.core.parallel`) ships them to worker processes instead of
    graph objects.  Only the canonical state crosses the pipe: the node
    labels and the CSR arrays (compact ``array`` buffers).  Every derived
    form — bitmask rows, dense probability rows, int-keyed dicts, cached
    bit singletons — is rebuilt on unpickle, which is faster than
    serialising an O(n^2) float matrix and keeps the payload near the
    information-theoretic minimum.
    """

    __slots__ = (
        "nodes",
        "index",
        "n",
        "adj",
        "prob",
        "rows",
        "bits",
        "row_offsets",
        "nbr_ids",
        "nbr_probs",
        "full_mask",
    )

    def __init__(self, graph: UncertainGraph) -> None:
        order = sorted(graph.nodes(), key=node_sort_key)
        index = {u: i for i, u in enumerate(order)}
        n = len(order)
        bits = [1 << i for i in range(n)]
        dense = n <= _DENSE_ROW_LIMIT

        adj: list[int] = []
        prob: list[dict[int, float]] = []
        rows: list[list[float]] | None = [] if dense else None
        row_offsets = array("l", [0])
        nbr_ids = array("l")
        nbr_probs = array("d")

        for u in order:
            row: dict[int, float] = {}
            mask = 0
            for v, p in graph.incident(u).items():
                j = index[v]
                row[j] = p
                mask |= bits[j]
            adj.append(mask)
            prob.append(row)
            if rows is not None:
                flat = [0.0] * n
                for j, p in row.items():
                    flat[j] = p
                rows.append(flat)
            for j, p in sorted(row.items(), key=lambda e: (-e[1], e[0])):
                nbr_ids.append(j)
                nbr_probs.append(p)
            row_offsets.append(len(nbr_ids))

        self.nodes = order
        self.index = index
        self.n = n
        self.adj = adj
        self.prob = prob
        self.rows = rows
        self.bits = bits
        self.row_offsets = row_offsets
        self.nbr_ids = nbr_ids
        self.nbr_probs = nbr_probs
        self.full_mask = (1 << n) - 1 if n else 0

    def __getstate__(self) -> tuple[
        list[Node], array[int], array[int], array[float]
    ]:
        # Labels + CSR only; all derived forms are rebuilt in __setstate__.
        return (self.nodes, self.row_offsets, self.nbr_ids, self.nbr_probs)

    def __setstate__(
        self,
        state: tuple[list[Node], array[int], array[int], array[float]],
    ) -> None:
        order, row_offsets, nbr_ids, nbr_probs = state
        n = len(order)
        bits = [1 << i for i in range(n)]
        adj: list[int] = []
        prob: list[dict[int, float]] = []
        dense = n <= _DENSE_ROW_LIMIT
        rows: list[list[float]] | None = [] if dense else None
        for u in range(n):
            row: dict[int, float] = {}
            mask = 0
            for i in range(row_offsets[u], row_offsets[u + 1]):
                j = nbr_ids[i]
                row[j] = nbr_probs[i]
                mask |= bits[j]
            adj.append(mask)
            prob.append(row)
            if rows is not None:
                flat = [0.0] * n
                for j, p in row.items():
                    flat[j] = p
                rows.append(flat)
        self.nodes = order
        self.index = {u: i for i, u in enumerate(order)}
        self.n = n
        self.adj = adj
        self.prob = prob
        self.rows = rows
        self.bits = bits
        self.row_offsets = row_offsets
        self.nbr_ids = nbr_ids
        self.nbr_probs = nbr_probs
        self.full_mask = (1 << n) - 1 if n else 0

    def decompile(self, mask: int) -> frozenset[Node]:
        """Original labels of the nodes whose bits are set in ``mask``."""
        nodes = self.nodes
        return frozenset(nodes[i] for i in iter_bits(mask))


def compile_component(graph: UncertainGraph) -> CompiledComponent:
    """Compile ``graph`` (typically one connected component) for search."""
    return CompiledComponent(graph)


def derive_component_view(
    compiled: CompiledGraph, members: list[Node]
) -> CompiledComponent:
    """Build a component's :class:`CompiledComponent` from the unified
    whole-graph artifact, without touching the :class:`UncertainGraph`.

    ``members`` must be the node set of one pipeline component of the
    graph ``compiled`` was lowered from: the pruning stage removes
    *nodes* (edges among survivors are untouched) and every edge the cut
    optimization removes crosses two final components — so filtering the
    whole-graph rows to ``members`` reproduces the component's adjacency
    exactly.  The view is bit-identical to
    ``compile_component(component)``:

    * local ids renumber ``members`` by ascending ``sort_rank``, which
      restricted to any subset equals the component's own
      :func:`node_sort_key` sort;
    * each CSR row is the member-filtered slice of the whole-graph
      lazily-sorted ``desc_row`` — ordered by
      ``(-probability, sort_rank)``, whose restriction to members *is*
      the component order ``(-probability, local_id)`` (local ids are
      monotone in rank), with the identical float objects;
    * every derived form (bitmask rows, dense rows, dicts) is rebuilt
      from that CSR by the same code the pickle path uses.

    Runs in ``O(sum of member degrees)`` — no sorting, no string keys —
    which is what collapses the pipeline's second compile stage into a
    cheap projection of the first.

    The view is a deep **snapshot**: its arrays are freshly built, never
    aliases of ``compiled``'s lists.  That independence is load-bearing
    twice over — views are pickled to worker processes by the parallel
    layer, and the session caches them per component while
    :meth:`CompiledGraph.apply_delta` patches the source artifact's rows
    *in place*; neither may observe later mutations.
    """
    index = compiled.index
    rank = compiled.sort_rank
    gids = sorted((index[u] for u in members), key=rank.__getitem__)
    local: dict[int, int] = {g: i for i, g in enumerate(gids)}
    nodes: list[Node] = [compiled.nodes[g] for g in gids]
    row_offsets = array("l", [0])
    nbr_ids = array("l")
    nbr_probs = array("d")
    get = local.get
    for g in gids:
        dids, dps = compiled.desc_row(g)
        for j, gid in enumerate(dids):
            li = get(gid)
            if li is not None:
                nbr_ids.append(li)
                nbr_probs.append(dps[j])
        row_offsets.append(len(nbr_ids))
    view = CompiledComponent.__new__(CompiledComponent)
    view.__setstate__((nodes, row_offsets, nbr_ids, nbr_probs))
    return view


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask`` in ascending order.

    Convenience for cold paths; the hot search loops below inline the same
    chunked extraction to avoid generator overhead.
    """
    base = 0
    while mask:
        chunk = mask & _CHUNK_MASK
        mask >>= 64
        while chunk:
            low = chunk & -chunk
            chunk ^= low
            yield base + low.bit_length() - 1
        base += 64


# ----------------------------------------------------------------------
# Enumeration: the MUC recursion over the compiled component
# ----------------------------------------------------------------------

def enumerate_component(
    component: UncertainGraph,
    k: int,
    tau_floor: float,
    min_size: int,
    insearch: bool,
    insearch_min_candidates: int,
    stats: EnumerationStats,
) -> Iterator[frozenset[Node]]:
    """All maximal (k, tau)-cliques of one component (Algorithm 4 core).

    Mirrors ``enumeration._muc`` branch for branch: identical recursion
    tree, identical floats, identical counter totals, identical clique
    order — only the data representation differs (see the module
    docstring for the virtual-``X`` argument).  Thin composition of
    :func:`enum_root_prep` (the root call's gate and bookkeeping) and
    :func:`enumerate_root_range` over the full root range — the same two
    pieces the process-parallel layer drives with partial ranges; the
    driver stays a generator, so consumers still iterate lazily component
    by component.
    """
    t_start = perf_counter()
    comp = compile_component(component)
    n = comp.n
    if n == 0:
        return
    if comp.rows is None:  # pragma: no cover - dispatch keeps this out
        raise ValueError(
            "enumerate_component requires a component within "
            f"KERNEL_COMPONENT_LIMIT ({KERNEL_COMPONENT_LIMIT}), got {n}"
        )
    t_compiled = perf_counter()
    stats.timings.add("compile", t_compiled - t_start)
    cands = enum_root_prep(
        comp, k, tau_floor, min_size, insearch, insearch_min_candidates,
        stats,
    )
    out: list[frozenset[Node]] = []
    if cands is not None:
        out = enumerate_root_range(
            comp, k, tau_floor, min_size, insearch,
            insearch_min_candidates, cands, 0, len(cands), stats,
        )
    stats.timings.add("search", perf_counter() - t_compiled)
    yield from out


def enum_root_prep(
    comp: CompiledComponent,
    k: int,
    tau_floor: float,
    min_size: int,
    insearch: bool,
    insearch_min_candidates: int,
    stats: EnumerationStats,
) -> list[tuple[int, float]] | None:
    """Root-call bookkeeping of the MUC recursion, factored out so the
    parallel layer can split the surviving root candidates into ranges.

    Performs exactly what the sequential root call does before its branch
    loop: counts the root search call and applies the root in-search core
    gate (Algorithm 4 lines 12-15 with ``R`` empty).  Returns the
    surviving root candidate list, or ``None`` when the whole component is
    dead (root insearch prune).  Concatenating
    :func:`enumerate_root_range` over any partition of the result — stats
    summed — reproduces the sequential search exactly.
    """
    n = comp.n
    stats.search_calls += 1
    cands = [(v, 1.0) for v in range(n)]
    if n >= insearch_min_candidates and insearch and min_size > 0:
        alive = topk_peel_masks(comp, comp.full_mask, 0, k, tau_floor)
        if alive is None or alive.bit_count() < min_size:
            stats.insearch_prunes += 1
            return None
        if alive != comp.full_mask:
            stats.insearch_prunes += 1
            cands = [e for e in cands if alive >> e[0] & 1]
    return cands


def enumerate_root_range(
    comp: CompiledComponent,
    k: int,
    tau_floor: float,
    min_size: int,
    insearch: bool,
    insearch_min_candidates: int,
    cands: list[tuple[int, float]],
    start: int,
    stop: int,
    stats: EnumerationStats,
) -> list[frozenset[Node]]:
    """Search the root branches ``cands[start:stop]`` of one component.

    ``cands`` must be the full surviving root candidate list from
    :func:`enum_root_prep`; each branch's candidate-filter tail is always
    the suffix of the *whole* list, so a range owns its branch subtrees
    but not the nodes after it.  The branches before ``start`` are
    **silently replayed** — only their side effects on the root loop's
    ``rem_mask`` and ``banned`` masks are reproduced (the same popcount
    and threshold compares the sequential loop ran, minus recursion,
    stats, and output) — so the live range starts from the exact
    sequential state, and concatenating the outputs of a partition of
    ``range(len(cands))`` in range order equals the sequential clique
    order with the stats summing to the sequential totals.
    """
    n = comp.n
    rows = comp.rows
    if rows is None:
        raise ValueError(
            "enumerate_root_range requires a component within "
            f"KERNEL_COMPONENT_LIMIT ({KERNEL_COMPONENT_LIMIT}), got {n}"
        )
    adj = comp.adj
    bits = comp.bits
    nodes = comp.nodes
    out: list[frozenset[Node]] = []
    # Batched stats, flushed once per range: attribute access on the
    # stats object is too slow for a 10^5-calls recursion.
    calls = insearch_prunes = branch_prunes = cliques = 0

    def muc(
        clique: list[int],
        clique_len: int,
        clique_prob: float,
        cands: list[tuple[int, float]],
        cand_mask: int,
        common: int,
        banned: int,
    ) -> None:
        # The recursive MUC procedure (Algorithm 4, lines 7-22).
        # ``cands`` holds (id, pi) pairs in ascending id order — the
        # compiled order *is* the legacy order — with pi the incremental
        # product to the clique.  ``common`` is the intersection of
        # adj[r] over the clique and ``banned`` the branch-size-pruned
        # ids; together they stand in for legacy's X (see the module
        # docstring).  ``cand_mask`` is the bitmask of ``cands`` — only
        # guaranteed valid while the branch-size prune is still live
        # (its sole consumer); deep calls pass 0.  C is never empty
        # here: leaf children are handled inline below.
        nonlocal calls, insearch_prunes, branch_prunes, cliques
        calls += 1
        nc = len(cands)
        if nc >= insearch_min_candidates and insearch and clique_len < min_size:
            # Lines 12-15 of Algorithm 4 over the compiled CSR rows:
            # shrink C to the (Top_k, tau)-core of R + C, aborting when a
            # clique member is peeled or under min_size nodes survive.
            # Masks are rebuilt here rather than threaded through the
            # recursion: the gate fires on a tiny fraction of calls, and
            # the cand_mask argument is not valid on deep ones.
            cand_mask = 0
            for e in cands:
                cand_mask |= bits[e[0]]
            clique_mask = 0
            for r in clique:
                clique_mask |= bits[r]
            alive = topk_peel_masks(
                comp, clique_mask | cand_mask, clique_mask, k, tau_floor
            )
            if alive is None or alive.bit_count() < min_size:
                insearch_prunes += 1
                return
            pruned = alive & cand_mask
            if pruned != cand_mask:
                insearch_prunes += 1
                cand_mask = pruned
                cands = [e for e in cands if pruned >> e[0] & 1]

        i = 0
        if clique_len + 1 < min_size:
            # Shallow branch loop: the branch-size prune (line 19) can
            # still fire, so the candidate bitmask is maintained and a
            # popcount upper bound screens each branch — the threshold
            # filter only ever shrinks the neighbor intersection, so a
            # branch hopeless by popcount alone takes the same prune
            # (and counter) without running the filter.
            need = min_size - clique_len - 1
            child_len = clique_len + 1
            child_shallow = need > 1
            rem_mask = cand_mask
            for u, pi_u in cands:
                i += 1
                bu = bits[u]
                rem_mask ^= bu
                if (rem_mask & adj[u]).bit_count() < need:
                    branch_prunes += 1
                    banned |= bu
                    continue
                new_prob = clique_prob * pi_u
                urow = rows[u]
                # Line 17's candidate filter: v survives when the edge
                # exists (dense rows store 0.0 for non-edges) and the
                # incremental product clears the precomputed
                # threshold_floor(tau) — the pragma covers that raw
                # hot-loop compare.  An explicit loop, not a
                # comprehension: on 3.11 every comprehension is a nested
                # function call (PEP 709 inlining is 3.12+), which this
                # loop runs ~10^6 times.
                new_cands = []
                for v, pi_v in cands[i:]:
                    p = urow[v]
                    if p:
                        piv = pi_v * p
                        if new_prob * piv >= tau_floor:  # repro-lint: ignore[RPL001]
                            new_cands.append((v, piv))
                if len(new_cands) >= need:
                    # Same test as line 19's ``|R| + 1 + |C'| >= min_size``
                    # with the constants folded into ``need``; new_cands
                    # is non-empty here — an empty C cannot pass the size
                    # test while the prune is live — so no leaf case.
                    new_mask = 0
                    if child_shallow:
                        for e in new_cands:
                            new_mask |= bits[e[0]]
                    clique.append(u)
                    muc(
                        clique, child_len, new_prob, new_cands,
                        new_mask, common & adj[u], banned,
                    )
                    clique.pop()
                else:
                    # Branch-size prune (Algorithm 4, line 19): u cannot
                    # reach min_size here nor extend any later clique of
                    # this subtree, so legacy keeps it out of X —
                    # mirrored by the banned mask.
                    branch_prunes += 1
                    banned |= bu
        else:
            # Deep: every branch recurses (the size test is a tautology)
            # and no prune can fire, so the whole subtree below runs in
            # the lean branch loop.  ``banned`` is frozen once the prune
            # is dead; its complement is taken once for all the subtree's
            # leaf scans.
            deep_branches(clique, clique_prob, cands, common, ~banned)

    def deep_branches(
        clique: list[int],
        clique_prob: float,
        cands: list[tuple[int, float]],
        common: int,
        not_banned: int,
    ) -> None:
        # The branch loop shared by every deep call — the clique already
        # has at least min_size - 1 nodes, so for every *child* the
        # in-search gate is dead (its clique reaches min_size), the
        # branch-size prune cannot fire, and no candidate bitmask is
        # needed.  The caller has already counted the enclosing call;
        # child calls are counted here at the call site, which is what
        # lets leaf and singleton children run without a frame.
        nonlocal calls, cliques
        i = 0
        for u, pi_u in cands:
            i += 1
            new_prob = clique_prob * pi_u
            urow = rows[u]
            new_cands = []
            for v, pi_v in cands[i:]:
                p = urow[v]
                if p:
                    piv = pi_v * p
                    if new_prob * piv >= tau_floor:  # repro-lint: ignore[RPL001]
                        new_cands.append((v, piv))
            clique.append(u)
            if len(new_cands) > 1:
                calls += 1
                deep_branches(
                    clique, new_prob, new_cands, common & adj[u], not_banned
                )
            elif new_cands:
                # Singleton chain: the child would run exactly one branch
                # whose tail is empty and land straight in its own leaf.
                # Emulating the child frame *and* its leaf here drops
                # about a quarter of all recursion frames; the two
                # counter bumps are the child call and the leaf call
                # legacy would have made.
                v, piv = new_cands[0]
                calls += 2
                new_prob = new_prob * piv
                clique.append(v)
                wit = common & adj[u] & adj[v] & not_banned
                blocked = False
                base = 0
                while wit:
                    chunk = wit & _CHUNK_MASK
                    wit >>= 64
                    while chunk:
                        low = chunk & -chunk
                        chunk ^= low
                        w = base + low.bit_length() - 1
                        pi = 1.0
                        for r in clique:
                            pi *= rows[r][w]
                            # Hot path: precomputed threshold_floor.
                            if new_prob * pi < tau_floor:  # repro-lint: ignore[RPL001]
                                break
                        else:
                            blocked = True
                            wit = 0
                            break
                    base += 64
                if not blocked:
                    cliques += 1
                    out.append(frozenset(nodes[x] for x in clique))
                clique.pop()
            else:
                # The child call would find C empty: handle the leaf
                # inline (same call count, no frame).  This is the
                # virtual-X test: ``wit`` is the child's
                # ``common & ~banned`` — every node adjacent to the whole
                # clique that legacy's X could still contain at this
                # leaf.  For each, pi is rebuilt by multiplying edge
                # probabilities in clique (= path) order — the same float
                # sequence legacy maintained incrementally — and compared
                # exactly as legacy's final X filter did.  Partial
                # products shrink monotonically, so dropping below the
                # floor early is conclusive; completing the loop
                # reproduces legacy's final compare bit for bit.
                calls += 1
                wit = common & adj[u] & not_banned
                blocked = False
                base = 0
                while wit:
                    chunk = wit & _CHUNK_MASK
                    wit >>= 64
                    while chunk:
                        low = chunk & -chunk
                        chunk ^= low
                        w = base + low.bit_length() - 1
                        pi = 1.0
                        for r in clique:
                            pi *= rows[r][w]
                            # Hot path: precomputed threshold_floor.
                            if new_prob * pi < tau_floor:  # repro-lint: ignore[RPL001]
                                break
                        else:
                            # The witness extends R: not maximal.
                            blocked = True
                            wit = 0
                            break
                    base += 64
                if not blocked:
                    cliques += 1
                    out.append(frozenset(nodes[x] for x in clique))
            clique.pop()

    if min_size <= 1:
        # Deep root: every branch recurses straight into the lean loop
        # (the shallow machinery never runs), and splitting it would mean
        # a second copy of the inline leaf emulation for no benefit —
        # min_size <= 1 only happens at k = 0, never on a perf-relevant
        # workload — so only the whole range is accepted.
        if start != 0 or stop != len(cands):
            raise ValueError(
                "deep-root search (min_size <= 1) cannot be range-split"
            )
        if cands:
            deep_branches([], 1.0, cands, comp.full_mask, ~0)
    else:
        # The root branch loop of the sequential search, split at branch
        # granularity.  Branches [0, start) are replayed silently;
        # [start, stop) run live — the loop body is the shallow branch
        # loop of ``muc`` with clique_prob = 1.0 folded away (IEEE
        # 1.0 * x == x, so the floats are unchanged).
        need = min_size - 1
        child_shallow = need > 1
        rem_mask = 0
        for e in cands:
            rem_mask |= bits[e[0]]
        banned = 0
        for idx in range(start):
            u, pi_u = cands[idx]
            bu = bits[u]
            rem_mask ^= bu
            if (rem_mask & adj[u]).bit_count() < need:
                banned |= bu
                continue
            urow = rows[u]
            survivors = 0
            for v, pi_v in cands[idx + 1:]:
                p = urow[v]
                if p:
                    piv = pi_v * p
                    # Replayed verdict of the live filter below; survivor
                    # counting can stop at ``need`` because the filter is
                    # append-only.
                    if pi_u * piv >= tau_floor:  # repro-lint: ignore[RPL001]
                        survivors += 1
                        if survivors >= need:
                            break
            if survivors < need:
                banned |= bu
        clique: list[int] = []
        full = comp.full_mask
        for idx in range(start, stop):
            u, pi_u = cands[idx]
            bu = bits[u]
            rem_mask ^= bu
            if (rem_mask & adj[u]).bit_count() < need:
                branch_prunes += 1
                banned |= bu
                continue
            new_prob = pi_u  # root clique_prob is exactly 1.0
            urow = rows[u]
            new_cands = []
            for v, pi_v in cands[idx + 1:]:
                p = urow[v]
                if p:
                    piv = pi_v * p
                    # Hot path: precomputed threshold_floor.
                    if new_prob * piv >= tau_floor:  # repro-lint: ignore[RPL001]
                        new_cands.append((v, piv))
            if len(new_cands) >= need:
                new_mask = 0
                if child_shallow:
                    for e in new_cands:
                        new_mask |= bits[e[0]]
                clique.append(u)
                muc(
                    clique, 1, new_prob, new_cands, new_mask,
                    full & adj[u], banned,
                )
                clique.pop()
            else:
                branch_prunes += 1
                banned |= bu
    stats.search_calls += calls
    stats.insearch_prunes += insearch_prunes
    stats.branch_size_prunes += branch_prunes
    stats.cliques += cliques
    return out


# ----------------------------------------------------------------------
# Pivot engine: Tomita-style greedy pivoting on the MUC recursion
# ----------------------------------------------------------------------
#
# The classic Bron-Kerbosch pivot rule — pick the pivot u maximizing
# |C & Γ(u)| and branch only on C \ Γ(u) — is UNSOUND for (k, tau)-
# cliques as stated: K subset of R + (C & Γ(u)) being structurally
# extendable by u does not imply CPr(K + {u}) >= tau, so K can be
# maximal even though u is adjacent to all of it.  The sound variant
# implemented here is the *absorbing* pivot: after choosing u by
# popcount coverage, greedily grow an absorption set T inside C & Γ(u)
# while R + T + {u} stays a structural clique AND its clique probability
# stays above the (safety-margined) threshold.  Then for every
# K subset of R + T, the superset chain gives
# CPr(K + {u}) >= CPr(R + T + {u}) >= tau, so u extends K and K is not
# maximal — branching on T can be skipped wholesale.  Vertices outside
# T still branch, and the skipped vertices are *carried forward* into
# every child's candidate list (a child of branch q receives
# (C \ branched-so-far) & Γ_tau(q), absorbed members included), which
# preserves the unique-path argument: a clique's next vertex is always
# its first member in branch order, so no clique is reached twice.
#
# Emission stays on the oracle predicate: at a leaf the clique
# probability and every witness chain are *recomputed in canonical
# ascending-id order* — the exact nested float sequence the bitset and
# legacy engines build along their paths — so the emitted set of
# cliques, and each clique's probability chain, are bit-identical to
# ``engine="bitset"``.  (The descent filters multiply in pivot path
# order; a filter verdict can in principle differ from the canonical
# one when a partial product lands within ~1 ulp of the threshold
# floor, a measure-zero event documented in docs/performance.md and
# never observed by the parity suites.)  Yield order follows the pivot
# recursion and therefore differs from the oracle engines; parity is on
# the set.


def pivot_root_plan(
    comp: CompiledComponent,
    k: int,
    tau_floor: float,
    min_size: int,
    cands: list[tuple[int, float]],
    stats: EnumerationStats,
) -> list[int]:
    """Choose the root pivot and absorption set for the pivot engine.

    ``cands`` is the surviving root candidate list from
    :func:`enum_root_prep`.  Returns the root *branch list* — the
    candidate ids to branch on, ascending — after absorbing the skipped
    set, and counts the root node's pivot bookkeeping into ``stats``
    (exactly once: the parallel layer computes the plan in the driver
    and ships it to every range task).
    """
    rows = comp.rows
    if rows is None:
        raise ValueError(
            "pivot_root_plan requires a component within "
            f"KERNEL_COMPONENT_LIMIT ({KERNEL_COMPONENT_LIMIT})"
        )
    adj = comp.adj
    bits = comp.bits
    skip_mask = 0
    if len(cands) > 1:
        cand_mask = 0
        for e in cands:
            cand_mask |= bits[e[0]]
        best_u = -1
        best_cover = -1
        for u, _pi_u in cands:
            cover = (adj[u] & cand_mask).bit_count()
            if cover > best_cover:
                best_cover = cover
                best_u = u
        if best_cover > 0:
            skip_floor = tau_floor * _PIVOT_SAFETY
            t_adj = adj[best_u]
            budget = 1.0  # root clique probability
            urow = rows[best_u]
            t_list: list[int] = []
            for v, _pi_v in cands:
                if v == best_u:
                    continue
                bv = bits[v]
                if not bv & t_adj:
                    continue
                prod = budget * urow[v]
                if prod < skip_floor:  # repro-lint: ignore[RPL001]
                    continue
                ok = True
                vrow = rows[v]
                for t in t_list:
                    prod *= vrow[t]
                    if prod < skip_floor:  # repro-lint: ignore[RPL001]
                        ok = False
                        break
                if ok:
                    skip_mask |= bv
                    t_list.append(v)
                    t_adj &= adj[v]
                    budget = prod
    branches = [e[0] for e in cands if not bits[e[0]] & skip_mask]
    stats.pivot_branches += len(branches)
    stats.pivot_skipped += len(cands) - len(branches)
    return branches


def enumerate_pivot_range(
    comp: CompiledComponent,
    k: int,
    tau_floor: float,
    min_size: int,
    insearch: bool,
    insearch_min_candidates: int,
    cands: list[tuple[int, float]],
    branches: list[int],
    start: int,
    stop: int,
    stats: EnumerationStats,
) -> list[frozenset[Node]]:
    """Pivot-engine search of the root branches ``branches[start:stop]``.

    ``cands`` must be the full surviving root candidate list from
    :func:`enum_root_prep` and ``branches`` the root branch list from
    :func:`pivot_root_plan`.  Unlike the bitset engine's suffix ranges,
    a pivot branch's candidate tail carries the absorbed (skipped)
    vertices *before* it as well, so the root loop filters ``cands`` by
    a live remaining-mask rather than slicing.  Branches before
    ``start`` are silently replayed — the same popcount and threshold
    verdicts, minus recursion, stats and output — so any partition of
    ``range(len(branches))`` concatenates to the sequential result with
    stats summing to the sequential totals (``jobs=N`` bit-parity).
    """
    n = comp.n
    rows = comp.rows
    if rows is None:
        raise ValueError(
            "enumerate_pivot_range requires a component within "
            f"KERNEL_COMPONENT_LIMIT ({KERNEL_COMPONENT_LIMIT}), got {n}"
        )
    adj = comp.adj
    bits = comp.bits
    nodes = comp.nodes
    skip_floor = tau_floor * _PIVOT_SAFETY
    out: list[frozenset[Node]] = []
    # Batched stats, flushed once per range (attribute access on the
    # stats object is too slow for the recursion's call volume).
    calls = insearch_prunes = branch_prunes = cliques = 0
    pbranches = pskipped = 0

    def rec(
        clique: list[int],
        clique_len: int,
        clique_prob: float,
        cands: list[tuple[int, float]],
        common: int,
        banned: int,
    ) -> None:
        # One node of the absorbing-pivot recursion.  ``cands`` holds
        # (id, pi) pairs in ascending id order with pi the incremental
        # product to the clique *in pivot path order*; ``common`` is the
        # intersection of adj[r] over the clique and ``banned`` the
        # branch-size-pruned ids (the virtual-X machinery of the bitset
        # engine, unchanged — carried-forward candidates that die on a
        # filter are caught by the leaf witness scan automatically).
        nonlocal calls, insearch_prunes, branch_prunes, cliques
        nonlocal pbranches, pskipped
        calls += 1
        if not cands:
            # Leaf: recompute the canonical ascending-order chain (the
            # float sequence the oracle engines built along their path)
            # and run the witness scan against it — emission decisions
            # are bit-identical to engine="bitset".
            if clique_len >= min_size:
                order = sorted(clique)
                prob = 1.0
                for j in range(clique_len):
                    vj = order[j]
                    pi = 1.0
                    for i in range(j):
                        pi *= rows[order[i]][vj]
                    prob = prob * pi
                if prob >= tau_floor:  # repro-lint: ignore[RPL001]
                    wit = common & ~banned
                    blocked = False
                    base = 0
                    while wit:
                        chunk = wit & _CHUNK_MASK
                        wit >>= 64
                        while chunk:
                            low = chunk & -chunk
                            chunk ^= low
                            w = base + low.bit_length() - 1
                            pi = 1.0
                            for r in order:
                                pi *= rows[r][w]
                                # Hot path: precomputed threshold_floor.
                                if prob * pi < tau_floor:  # repro-lint: ignore[RPL001]
                                    break
                            else:
                                blocked = True
                                wit = 0
                                break
                        base += 64
                    if not blocked:
                        cliques += 1
                        out.append(frozenset(nodes[x] for x in clique))
            return

        nc = len(cands)
        if nc >= insearch_min_candidates and insearch and clique_len < min_size:
            # In-search (Top_k, tau)-core gate, identical to the bitset
            # engine's (Algorithm 4 lines 12-15).
            cand_mask = 0
            for e in cands:
                cand_mask |= bits[e[0]]
            clique_mask = 0
            for r in clique:
                clique_mask |= bits[r]
            alive = topk_peel_masks(
                comp, clique_mask | cand_mask, clique_mask, k, tau_floor
            )
            if alive is None or alive.bit_count() < min_size:
                insearch_prunes += 1
                return
            pruned = alive & cand_mask
            if pruned != cand_mask:
                insearch_prunes += 1
                cands = [e for e in cands if pruned >> e[0] & 1]
                nc = len(cands)

        cand_mask = 0
        for e in cands:
            cand_mask |= bits[e[0]]

        # Pivot selection: max structural coverage by popcount, ties to
        # the lowest id (deterministic).  Then greedy absorption: grow T
        # inside C & Γ(u) while R + T + {u} stays a structural clique
        # whose running clique probability clears the safety-margined
        # floor — every sub-clique of R + T is then non-maximal (u
        # extends it), so T never branches.
        skip_mask = 0
        if nc > 1:
            best_u = -1
            best_pi = 1.0
            best_cover = -1
            for u, pi_u in cands:
                cover = (adj[u] & cand_mask).bit_count()
                if cover > best_cover:
                    best_cover = cover
                    best_u = u
                    best_pi = pi_u
            if best_cover > 0:
                t_adj = adj[best_u]
                budget = clique_prob * best_pi
                urow = rows[best_u]
                t_list: list[int] = []
                for v, pi_v in cands:
                    if v == best_u:
                        continue
                    bv = bits[v]
                    if not bv & t_adj:
                        continue
                    prod = budget * pi_v * urow[v]
                    if prod < skip_floor:  # repro-lint: ignore[RPL001]
                        continue
                    ok = True
                    vrow = rows[v]
                    for t in t_list:
                        prod *= vrow[t]
                        if prod < skip_floor:  # repro-lint: ignore[RPL001]
                            ok = False
                            break
                    if ok:
                        skip_mask |= bv
                        t_list.append(v)
                        t_adj &= adj[v]
                        budget = prod

        prune_live = clique_len + 1 < min_size
        need = min_size - clique_len - 1
        child_len = clique_len + 1
        rem_mask = cand_mask
        branched = 0
        for u, pi_u in cands:
            bu = bits[u]
            if bu & skip_mask:
                continue
            branched += 1
            rem_mask ^= bu
            if prune_live and (rem_mask & adj[u]).bit_count() < need:
                # Branch-size prune (Algorithm 4, line 19): the popcount
                # over-approximates the child candidate count (absorbed
                # vertices stay in rem_mask), so the bound is sound.
                branch_prunes += 1
                banned |= bu
                continue
            new_prob = clique_prob * pi_u
            urow = rows[u]
            new_cands = []
            for v, pi_v in cands:
                if not rem_mask & bits[v]:
                    continue  # already branched (or u itself)
                p = urow[v]
                if p:
                    piv = pi_v * p
                    if new_prob * piv >= tau_floor:  # repro-lint: ignore[RPL001]
                        new_cands.append((v, piv))
            if prune_live and len(new_cands) < need:
                branch_prunes += 1
                banned |= bu
                continue
            clique.append(u)
            rec(clique, child_len, new_prob, new_cands, common & adj[u],
                banned)
            clique.pop()
        pbranches += branched
        pskipped += nc - branched

    # Root branch loop over the plan's branch list, with silent replay
    # of the branches before ``start``.  Root pi values are exactly 1.0
    # and the root clique probability is 1.0, so the replayed threshold
    # verdict for a child candidate v of branch u is ``p(u, v) >=
    # tau_floor`` — the same float compare the live loop runs.
    need = min_size - 1
    prune_live = min_size > 1
    rem_mask = 0
    for e in cands:
        rem_mask |= bits[e[0]]
    banned = 0
    for idx in range(start):
        u = branches[idx]
        bu = bits[u]
        rem_mask ^= bu
        if not prune_live:
            continue
        if (rem_mask & adj[u]).bit_count() < need:
            banned |= bu
            continue
        urow = rows[u]
        survivors = 0
        for v, _pi_v in cands:
            if not rem_mask & bits[v]:
                continue
            p = urow[v]
            # Replayed verdict of the live filter below; counting can
            # stop at ``need`` because the filter is append-only.
            if p and p >= tau_floor:  # repro-lint: ignore[RPL001]
                survivors += 1
                if survivors >= need:
                    break
        if survivors < need:
            banned |= bu
    full = comp.full_mask
    clique: list[int] = []
    for idx in range(start, stop):
        u = branches[idx]
        bu = bits[u]
        rem_mask ^= bu
        if prune_live and (rem_mask & adj[u]).bit_count() < need:
            branch_prunes += 1
            banned |= bu
            continue
        urow = rows[u]
        new_cands = []
        for v, pi_v in cands:
            if not rem_mask & bits[v]:
                continue
            p = urow[v]
            if p:
                piv = pi_v * p
                # Root clique_prob is exactly 1.0: new_prob == pi_u == 1.0.
                if piv >= tau_floor:  # repro-lint: ignore[RPL001]
                    new_cands.append((v, piv))
        if prune_live and len(new_cands) < need:
            branch_prunes += 1
            banned |= bu
            continue
        clique.append(u)
        rec(clique, 1, 1.0, new_cands, full & adj[u], banned)
        clique.pop()

    stats.search_calls += calls
    stats.insearch_prunes += insearch_prunes
    stats.branch_size_prunes += branch_prunes
    stats.cliques += cliques
    stats.pivot_branches += pbranches
    stats.pivot_skipped += pskipped
    return out


# ----------------------------------------------------------------------
# Maximum: the MaxUC+ color-bound branch-and-bound over bitmask state
# ----------------------------------------------------------------------

def maximum_component(
    component: UncertainGraph,
    k: int,
    tau_floor: float,
    min_size: int,
    best_size: int,
    use_advanced_one: bool,
    use_advanced_two: bool,
    insearch: bool,
    stats: MaximumSearchStats,
) -> tuple[list[Node] | None, int]:
    """MaxUC+ search of one component, seeded with the incumbent size.

    Returns ``(best, best_size)`` where ``best`` is the improved clique
    as original labels (``None`` when the incumbent was not beaten).
    Thin composition of the compile + coloring step and
    :func:`maximum_compiled`, split so the parallel layer can ship the
    compiled component and the (plain-int) color list to workers without
    the graph object.
    """
    t_start = perf_counter()
    comp = compile_component(component)
    n = comp.n
    if n == 0:
        return None, best_size
    coloring = greedy_coloring(component)
    color = [coloring[u] for u in comp.nodes]
    t_compiled = perf_counter()
    stats.timings.add("compile", t_compiled - t_start)
    result = maximum_compiled(
        comp, color, k, tau_floor, min_size, best_size, use_advanced_one,
        use_advanced_two, insearch, stats,
    )
    stats.timings.add("search", perf_counter() - t_compiled)
    return result


def maximum_compiled(
    comp: CompiledComponent,
    color: list[int],
    k: int,
    tau_floor: float,
    min_size: int,
    best_size: int,
    use_advanced_one: bool,
    use_advanced_two: bool,
    insearch: bool,
    stats: MaximumSearchStats,
) -> tuple[list[Node] | None, int]:
    """MaxUC+ search of one *already compiled* component.

    ``color[i]`` is the greedy color of node id ``i``.  Mirrors the
    closure in ``maximum.max_uc_plus`` exactly, including the order in
    which the three color bounds and the in-search peel fire and every
    float they produce (the bounds are the compiled twins of
    :mod:`repro.core.bounds`).  There is no maximality test here, so the
    candidate loop matches legacy's shape with dense rows and the bound
    bookkeeping batched into local counters.
    """
    n = comp.n
    adj = comp.adj
    prob = comp.prob
    rows = comp.rows
    bits = comp.bits
    nodes = comp.nodes
    # Batched stats (flushed once per component; see _CALLS comment).
    calls = size_prunes = basic_prunes = adv1_prunes = 0
    adv2_prunes = ins_prunes = 0

    best: list[Node] | None = None

    def search(
        clique: list[int],
        clique_mask: int,
        clique_prob: float,
        cids: list[int],
        cpis: list[float],
        cand_mask: int,
    ) -> None:
        nonlocal best, best_size, calls, size_prunes, basic_prunes
        nonlocal adv1_prunes, adv2_prunes, ins_prunes
        calls += 1
        clique_len = len(clique)
        if clique_len > best_size:
            best = [nodes[i] for i in clique]
            best_size = clique_len
        if not cids:
            return

        # Bounds, cheapest first (Section V implementation details).
        if clique_len + len({color[v] for v in cids}) <= best_size:
            basic_prunes += 1
            return
        if use_advanced_one:
            best_per_color: dict[int, float] = {}
            for j in range(len(cids)):
                c = color[cids[j]]
                pi_v = cpis[j]
                if pi_v > best_per_color.get(c, 0.0):
                    best_per_color[c] = pi_v
            bound = _prefix_budget(
                sorted(best_per_color.values(), reverse=True),
                clique_prob, tau_floor,
            )
            if clique_len + bound <= best_size:
                adv1_prunes += 1
                return
        if use_advanced_two and clique:
            tightest: int | None = None
            for w in clique:
                wrow = prob[w]
                best_per_color = {}
                for v in cids:
                    p = wrow.get(v)
                    if p is None:
                        continue  # v cannot join anyway; skip for w's budget
                    c = color[v]
                    if p > best_per_color.get(c, 0.0):
                        best_per_color[c] = p
                budget = _prefix_budget(
                    sorted(best_per_color.values(), reverse=True),
                    clique_prob, tau_floor,
                )
                if tightest is None or budget < tightest:
                    tightest = budget
                    if tightest == 0:
                        break
            bound = tightest if tightest is not None else 0
            if clique_len + bound <= best_size:
                adv2_prunes += 1
                return

        if insearch and clique_len < min_size:
            members = clique_mask | cand_mask
            alive = topk_peel_masks(comp, members, clique_mask, k, tau_floor)
            if alive is None or alive.bit_count() < min_size:
                ins_prunes += 1
                return
            if alive != members:
                ins_prunes += 1
                pruned = alive & cand_mask
                if pruned != cand_mask:
                    cand_mask = pruned
                    keep_ids: list[int] = []
                    keep_pis: list[float] = []
                    for j in range(len(cids)):
                        v = cids[j]
                        if pruned >> v & 1:
                            keep_ids.append(v)
                            keep_pis.append(cpis[j])
                    cids = keep_ids
                    cpis = keep_pis

        nc = len(cids)
        rem_mask = cand_mask
        i = 0
        while i < nc:
            if clique_len + nc - i <= best_size:
                size_prunes += 1
                return
            u = cids[i]
            pi_u = cpis[i]
            i += 1
            rem_mask ^= bits[u]
            new_prob = clique_prob * pi_u
            new_ids: list[int] = []
            new_pis: list[float] = []
            new_mask = 0
            if rows is not None:
                urow = rows[u]
                for j in range(i, nc):
                    v = cids[j]
                    p = urow[v]
                    if p:
                        piv = cpis[j] * p
                        # Hot path: tau_floor = threshold_floor(tau).
                        if new_prob * piv >= tau_floor:  # repro-lint: ignore[RPL001]
                            new_ids.append(v)
                            new_pis.append(piv)
                            new_mask |= bits[v]
            else:
                drow = prob[u]
                get = drow.get
                for j in range(i, nc):
                    v = cids[j]
                    dp = get(v)
                    if dp is not None:
                        piv = cpis[j] * dp
                        # Same precomputed-floor fast path, dict fallback.
                        if new_prob * piv >= tau_floor:  # repro-lint: ignore[RPL001]
                            new_ids.append(v)
                            new_pis.append(piv)
                            new_mask |= bits[v]
            clique.append(u)
            search(
                clique, clique_mask | bits[u], new_prob, new_ids, new_pis,
                new_mask,
            )
            clique.pop()

    search([], 0, 1.0, list(range(n)), [1.0] * n, comp.full_mask)
    stats.search_calls += calls
    stats.size_bound_prunes += size_prunes
    stats.basic_color_prunes += basic_prunes
    stats.advanced_one_prunes += adv1_prunes
    stats.advanced_two_prunes += adv2_prunes
    stats.insearch_prunes += ins_prunes
    return best, best_size


def _prefix_budget(
    values: list[float], clique_prob: float, tau_floor: float
) -> int:
    """Longest prefix of descending ``values`` whose running product with
    ``clique_prob`` stays at least tau — the compiled twin of
    :func:`repro.core.bounds._prefix_budget` (same floats, same order)."""
    count = 0
    running = clique_prob
    for value in values:
        running *= value
        # Hot path: tau_floor = threshold_floor(tau) fast path.
        if running < tau_floor:  # repro-lint: ignore[RPL001]
            break
        count += 1
    return count
