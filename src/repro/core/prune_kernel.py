"""Array-compiled graph artifact: flat CSR lowering for prune *and* search.

The search stage has run on a compiled bitset kernel since PR 2
(:mod:`repro.core.kernel`), and since PR 5 the *pruning* stage — the
paper's headline ``O(m * delta)`` DPCore+ peel (Algorithm 2), the
dominating (Top_k, tau)-core rule (Algorithm 3) and the cut
optimization's fringe peels — runs over a flat whole-graph CSR built
here.  Originally the two sides compiled independently, so a cold query
lowered every graph twice.  This module now owns the **unified**
artifact: a stdlib-only, zero-dependency compiler that lowers an
:class:`~repro.uncertain.graph.UncertainGraph` **once** into dense int
ids plus flat CSR adjacency/probability layouts that serve both sides —
the peels read the insertion-order and ascending rows directly, and the
search kernel *derives* its per-component
:class:`~repro.core.kernel.CompiledComponent` views (bitmask rows,
descending-prob CSR) from the precomputed ``sort_rank`` array and the
lazily-memoized per-row :meth:`CompiledGraph.desc_row` sorts — only
rows that survive pruning ever pay the descending sort
(:func:`repro.core.kernel.derive_component_view`).  The peel loops run
entirely over the flat structures:

* :func:`survival_peel` — DPCore+: the forward survival DP of Eq. (5)
  written into a preallocated flat row buffer, the Eq. (6) deletion
  update applied in place with the ``STABLE_P_LIMIT`` rebuild fallback,
  a bucketed worklist (per-round frontier lists drained in sequence)
  instead of the deque, and the verify-before-peel + final verification
  sweep discipline preserved — so the canonical core is identical to the
  legacy peel on every input.
* :func:`distribution_peel` — the Bonchi et al. [16] DPCore baseline
  (Eqs. 3 and 4) over the same compiled form, with reused column
  scratch buffers instead of per-column allocations.
* :func:`topk_peel` — Algorithm 3's (Top_k, tau)-core peel over
  precompiled ascending probability rows, including the ``fixed``
  (``V_I``) abort the in-search pruning needs.

All three accept an optional ``members`` subset so the session layer's
monotone-seeded peels (PR 4) can replay over the *same* compiled arrays
instead of building an induced scratch subgraph per seed — one compile
per graph version serves every prune of every query.

Parity contract
---------------
The peels converge to the same canonical node sets as their legacy
twins, bit for bit:

* the survival condition of every rule is monotone under node removal,
  and every condemnation is confirmed by a fresh, division-free DP over
  the currently-live neighbors, so each peel terminates at the unique
  maximal fixpoint — independent of worklist order, seeding, or engine;
* fresh DPs iterate incident rows in the graph's insertion order
  (filtered by liveness), multiplying the exact float sequences the
  legacy code reads out of ``incident(u).values()``;
* every threshold test compares against ``threshold_floor(tau)``, the
  exact fast path of :func:`~repro.utils.validation.prob_at_least` /
  ``prob_below``.

The randomized suite ``tests/core/test_prune_kernel_parity.py`` pins
this contract, including ``p == 1.0`` edges and probabilities straddling
``STABLE_P_LIMIT``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from typing import AbstractSet, Any, Iterable, Literal

from repro.core.tau_degree import STABLE_P_LIMIT
from repro.uncertain.graph import Node, UncertainGraph
from repro.utils.validation import threshold_floor, validate_k, validate_tau

__all__ = [
    "CompiledGraph",
    "CompiledPruneGraph",
    "PruneEngine",
    "node_sort_key",
    "compile_graph",
    "compile_prune_graph",
    "survival_peel",
    "distribution_peel",
    "topk_peel",
]

#: Engine selector of the pruning layer: ``"arrays"`` runs the compiled
#: flat-CSR peels of this module, ``"legacy"`` the original dict-based
#: peels.  Both converge to the same canonical node sets.
PruneEngine = Literal["arrays", "legacy"]


def node_sort_key(node: Node) -> tuple[str, str]:
    """Deterministic total order over arbitrary hashable nodes.

    Single definition of the library's node order; the search drivers,
    the search kernel and the whole-graph compiler below share it, and
    compilation evaluates it exactly once per node.
    """
    return (type(node).__name__, str(node))


class CompiledGraph:
    """A whole graph lowered to flat CSR lists for peeling *and* search.

    Nodes are densely renumbered in graph iteration order; adjacency and
    edge probabilities live in parallel CSR layouts sharing one
    ``row_offsets`` list:

    * ``nbr_ids`` / ``nbr_probs`` — **incident order** (the graph's
      insertion order), which is what the fresh survival / distribution
      DPs must multiply in to match the legacy float sequences;
    * :meth:`desc_row` — the same row sorted by **descending
      probability**, ties by the neighbor's ``sort_rank``, computed
      **lazily on first use** and memoized per row.  Filtering a row to
      a component's member set yields that component's search CSR
      (descending probability, ties by local id) verbatim — the key
      that lets :func:`repro.core.kernel.derive_component_view` build a
      search view per component without sorting anything.  Laziness is
      load-bearing: pruning discards most rows before any search looks
      at them, so an eager whole-graph descending sort would pay the
      (dominant) tuple-sort cost for nodes no query ever visits;
    * ``asc_rows`` — one **ascending-sorted** probability list per row,
      the precomputed form of the ``sorted(incident.values())`` lists
      the (Top_k, tau)-core peel consumes (peels copy a row before
      mutating it — compiled state is only ever appended to by the
      lazy memos, never rewritten).  Equal floats are interchangeable,
      so the value sequence matches the legacy sort exactly.

    ``sort_rank[i]`` is the position of node ``i`` in the library's
    deterministic :func:`node_sort_key` order over the whole graph.
    Restricted to any component's members, ascending rank equals the
    component's own ascending sort — so component views renumber by one
    rank sort instead of re-deriving string keys per node.

    The flat layouts are plain Python lists rather than ``array``
    typecode buffers: the peels index them millions of times, and a
    list read hands back the stored object while an ``array('d')`` read
    boxes a fresh float each time — lists measure ~30% faster end to
    end and make the compile itself ~2x cheaper (no per-element type
    conversion on build).  ``array`` is kept where it earns its keep:
    the compact memoized core-number vector.

    Deterministic core numbers (the DPCore+ truncation bound) are
    computed lazily on first use via a bucket peel over the CSR itself —
    (Top_k, tau)-only workloads never pay for them.

    The compile is pure data tied to one graph ``version``; the session
    layer memoizes it under ``(version, "compile")`` so every prune and
    every search of every query shares a single lowering.  The artifact
    is **picklable** — only the node labels, the insertion-order CSR and
    the version cross the pipe (``__getstate__``); every derived form is
    rebuilt on unpickle.
    """

    __slots__ = (
        "nodes",
        "index",
        "n",
        "row_offsets",
        "nbr_ids",
        "nbr_probs",
        "sort_rank",
        "asc_rows",
        "version",
        "_desc_rows",
        "_core_ids",
    )

    def __init__(
        self,
        nodes: tuple[Node, ...],
        row_offsets: list[int],
        nbr_ids: list[int],
        nbr_probs: list[float],
        version: int,
    ) -> None:
        self.nodes = nodes
        self.row_offsets = row_offsets
        self.nbr_ids = nbr_ids
        self.nbr_probs = nbr_probs
        self.version = version
        self._build_derived()

    def _build_derived(self) -> None:
        """Rebuild every derived form from the canonical flat state."""
        nodes = self.nodes
        n = len(nodes)
        self.n = n
        self.index = {u: i for i, u in enumerate(nodes)}
        order = sorted(range(n), key=lambda i: node_sort_key(nodes[i]))
        rank = [0] * n
        for r, i in enumerate(order):
            rank[i] = r
        self.sort_rank = rank
        rf = self.row_offsets
        ps = self.nbr_probs
        # Values only — cheap float sorts.  The id-carrying descending
        # rows are per-row lazy (see desc_row); only survivors pay.
        self.asc_rows = [
            sorted(ps[rf[i]:rf[i + 1]]) for i in range(n)
        ]
        self._desc_rows: list[tuple[list[int], list[float]] | None] = (
            [None] * n
        )
        self._core_ids: "array[int] | None" = None

    def desc_row(self, i: int) -> tuple[list[int], list[float]]:
        """Row ``i`` as ``(neighbor ids, probabilities)`` sorted by
        ``(-probability, sort_rank)`` — the search-CSR order — computed
        on first use and memoized.

        Negating a float flips only the sign bit, so ``-(-p)`` is ``p``
        bit for bit, and the rank tie-break gives the exact
        ``(-p, local_id)`` order of any member restriction.
        """
        row = self._desc_rows[i]
        if row is None:
            rf = self.row_offsets
            ids = self.nbr_ids
            ps = self.nbr_probs
            rank = self.sort_rank
            entries = sorted(
                (-ps[j], rank[ids[j]], ids[j])
                for j in range(rf[i], rf[i + 1])
            )
            row = ([e[2] for e in entries], [-e[0] for e in entries])
            self._desc_rows[i] = row
        return row

    def __getstate__(
        self,
    ) -> tuple[tuple[Node, ...], list[int], list[int], list[float], int]:
        # Labels + insertion-order CSR + version only; every derived
        # form (index, sort_rank, desc/asc rows, core numbers) is
        # rebuilt in __setstate__.
        return (
            self.nodes, self.row_offsets, self.nbr_ids, self.nbr_probs,
            self.version,
        )

    def __setstate__(
        self,
        state: tuple[
            tuple[Node, ...], list[int], list[int], list[float], int
        ],
    ) -> None:
        nodes, row_offsets, nbr_ids, nbr_probs, version = state
        self.nodes = nodes
        self.row_offsets = row_offsets
        self.nbr_ids = nbr_ids
        self.nbr_probs = nbr_probs
        self.version = version
        self._build_derived()

    def degree(self, i: int) -> int:
        """Full degree of compiled node ``i``."""
        return self.row_offsets[i + 1] - self.row_offsets[i]

    def core_ids(self) -> "array[int]":
        """Deterministic core number per compiled node (lazy, memoized).

        Batagelj-Zaversnik bucket peeling over the CSR; the values equal
        :func:`repro.deterministic.core_decomposition.core_numbers` on
        the source graph (the decomposition is a canonical function of
        the graph, pinned by the parity suite).
        """
        if self._core_ids is not None:
            return self._core_ids
        n = self.n
        rf = self.row_offsets
        ids = self.nbr_ids
        remaining = [rf[i + 1] - rf[i] for i in range(n)]
        core = array("l", [0] * n)
        max_degree = max(remaining, default=0)
        buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
        for i in range(n):
            buckets[remaining[i]].append(i)
        removed = bytearray(n)
        peeled = 0
        current = 0
        pointer = 0
        while peeled < n:
            if pointer > max_degree:
                break
            bucket = buckets[pointer]
            if not bucket:
                pointer += 1
                continue
            u = bucket.pop()
            if removed[u] or remaining[u] != pointer:
                continue  # stale entry: u was re-bucketed lower
            if pointer > current:
                current = pointer
            core[u] = current
            removed[u] = 1
            peeled += 1
            for j in range(rf[u], rf[u + 1]):
                v = ids[j]
                if removed[v]:
                    continue
                d = remaining[v] - 1
                remaining[v] = d
                buckets[d].append(v)
                if d < pointer:
                    pointer = d
        self._core_ids = core
        return core

    # ------------------------------------------------------------------
    # Delta compile
    # ------------------------------------------------------------------

    #: Mutation-log ops :meth:`apply_delta` can patch in place.
    #: ``remove_node`` is deliberately absent: deleting a row renumbers
    #: every dense id, which is a full re-lower by definition.
    _DELTA_OPS = frozenset(
        {"set_probability", "add_edge", "remove_edge", "add_node"}
    )

    def apply_delta(self, ops: Iterable[tuple[Any, ...]]) -> bool:
        """Patch the artifact in place with a mutation-log slice.

        ``ops`` is the tuple returned by
        :meth:`repro.uncertain.graph.UncertainGraph.mutations_since` for
        this artifact's :attr:`version`.  Returns ``True`` when every op
        was applied — the patched artifact is then equivalent to
        :func:`compile_graph` on the mutated graph (same node order, same
        insertion-order CSR float sequences, same ascending rows; lazily
        memoized descending rows and core numbers are invalidated only
        for touched rows) — or ``False`` without touching anything when
        the slice contains an op the patcher does not support
        (``remove_node``), in which case the caller must re-lower.

        Reweights are ``O(d + log d)`` (two row writes plus an
        ascending-row bisect); structural single-edge ops splice the flat
        lists (``O(m)`` worst case) — still far cheaper than a full
        compile, which pays the per-row sorts on top.
        """
        ops = tuple(ops)
        for entry in ops:
            if entry[1] not in self._DELTA_OPS:
                return False
        for entry in ops:
            op = entry[1]
            if op == "set_probability":
                _, _, u, v, old_p, new_p = entry
                self._patch_reweight(u, v, old_p, new_p)
            elif op == "add_edge":
                _, _, u, v, p, new_u, new_v = entry
                # The graph creates ``u`` before ``v`` (setdefault
                # order), so the dense numbering must append in the same
                # order to match a cold compile.
                if new_u:
                    self._append_node(u)
                if new_v:
                    self._append_node(v)
                self._insert_edge(u, v, p)
            elif op == "remove_edge":
                _, _, u, v, p = entry
                self._delete_edge(u, v, p)
            else:  # add_node
                self._append_node(entry[2])
        if ops:
            self.version = ops[-1][0]
        return True

    def _append_node(self, node: Node) -> None:
        """Append an isolated node (new dense id, empty row)."""
        i = self.n
        self.nodes = self.nodes + (node,)
        self.index[node] = i
        self.n = i + 1
        self.row_offsets.append(self.row_offsets[-1])
        self.asc_rows.append([])
        self._desc_rows.append(None)
        # Appending a node shifts later sort ranks monotonically:
        # relative order of pre-existing nodes is preserved, so memoized
        # descending rows (rank is only the tie-break) stay valid.
        nodes = self.nodes
        order = sorted(range(self.n), key=lambda j: node_sort_key(nodes[j]))
        rank = [0] * self.n
        for r, j in enumerate(order):
            rank[j] = r
        self.sort_rank = rank
        if self._core_ids is not None:
            self._core_ids.append(0)

    def _row_pos(self, i: int, nbr_id: int) -> int:
        """Flat position of neighbor ``nbr_id`` within row ``i``."""
        rf = self.row_offsets
        ids = self.nbr_ids
        for j in range(rf[i], rf[i + 1]):
            if ids[j] == nbr_id:
                return j
        raise KeyError((self.nodes[i], self.nodes[nbr_id]))

    def _patch_reweight(
        self, u: Node, v: Node, old_p: float, new_p: float
    ) -> None:
        iu = self.index[u]
        iv = self.index[v]
        self.nbr_probs[self._row_pos(iu, iv)] = new_p
        self.nbr_probs[self._row_pos(iv, iu)] = new_p
        for i in (iu, iv):
            row = self.asc_rows[i]
            row.pop(bisect_left(row, old_p))
            insort(row, new_p)
            self._desc_rows[i] = None
        # Reweights leave the deterministic structure — and therefore the
        # memoized core numbers — untouched.

    def _splice_in(self, i: int, nbr_id: int, p: float) -> None:
        # The graph appends a new edge at the end of each endpoint's
        # adjacency dict, so the row end is the insertion-order position.
        pos = self.row_offsets[i + 1]
        self.nbr_ids.insert(pos, nbr_id)
        self.nbr_probs.insert(pos, p)
        rf = self.row_offsets
        for t in range(i + 1, len(rf)):
            rf[t] += 1

    def _splice_out(self, i: int, nbr_id: int) -> None:
        pos = self._row_pos(i, nbr_id)
        del self.nbr_ids[pos]
        del self.nbr_probs[pos]
        rf = self.row_offsets
        for t in range(i + 1, len(rf)):
            rf[t] -= 1

    def _insert_edge(self, u: Node, v: Node, p: float) -> None:
        iu = self.index[u]
        iv = self.index[v]
        self._splice_in(iu, iv, p)
        self._splice_in(iv, iu, p)
        for i in (iu, iv):
            insort(self.asc_rows[i], p)
            self._desc_rows[i] = None
        self._core_ids = None

    def _delete_edge(self, u: Node, v: Node, p: float) -> None:
        iu = self.index[u]
        iv = self.index[v]
        self._splice_out(iu, iv)
        self._splice_out(iv, iu)
        for i in (iu, iv):
            row = self.asc_rows[i]
            row.pop(bisect_left(row, p))
            self._desc_rows[i] = None
        self._core_ids = None


#: Backwards-compatible name from the PR 5 era, when the artifact served
#: only the pruning stage.  Same class; the search kernel now derives
#: its component views from it too.
CompiledPruneGraph = CompiledGraph


def compile_graph(graph: UncertainGraph) -> CompiledGraph:
    """Lower ``graph`` into the unified :class:`CompiledGraph` (one pass).

    Runs in ``O(m log d_max)`` (the per-row sort dominates); the result
    references nothing of the source graph, so later graph mutations
    cannot corrupt it — the embedded ``version`` is what the session
    layer keys the artifact by.
    """
    nodes = tuple(graph.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    row_offsets = [0]
    nbr_ids: list[int] = []
    nbr_probs: list[float] = []
    id_of = index.__getitem__
    for u in nodes:
        inc = graph.incident(u)
        nbr_ids.extend(map(id_of, inc))
        nbr_probs.extend(inc.values())
        row_offsets.append(len(nbr_ids))
    return CompiledGraph(nodes, row_offsets, nbr_ids, nbr_probs,
                         graph.version)


#: Backwards-compatible alias for :func:`compile_graph`.
compile_prune_graph = compile_graph


def _initial_dead(
    cpg: CompiledPruneGraph, members: Iterable[Node] | None
) -> bytearray:
    """Liveness seed: everything alive, or only ``members`` when given."""
    if members is None:
        return bytearray(cpg.n)
    dead = bytearray(b"\x01" * cpg.n)
    index = cpg.index
    for u in members:
        dead[index[u]] = 0
    return dead


def _frontier_seeds(
    cpg: CompiledPruneGraph,
    frontier: Iterable[Node],
    dead: bytearray,
) -> list[int]:
    """Deduplicated compiled ids of live frontier nodes, in given order.

    Frontier nodes absent from the graph or outside the member set are
    ignored — a maintainer's dirty endpoints may have been deleted or
    may never have been part of the seeded core.
    """
    index_get = cpg.index.get
    seeds: list[int] = []
    seen: set[int] = set()
    for u in frontier:
        i = index_get(u)
        if i is not None and not dead[i] and i not in seen:
            seen.add(i)
            seeds.append(i)
    return seeds


def survival_peel(
    cpg: CompiledPruneGraph,
    k: int,
    tau: float,
    members: Iterable[Node] | None = None,
    frontier: Iterable[Node] | None = None,
) -> set[Node]:
    """DPCore+ (Algorithm 2) over the compiled arrays.

    Semantically identical to the legacy verified peel
    (:func:`repro.core.ktau_core.dp_core_plus` with ``engine="legacy"``):
    the deterministic-core prefilter, the Eq. (5) forward survival DP as
    the fresh (division-free) state builder, the Eq. (6) in-place
    deletion update with the ``STABLE_P_LIMIT`` rebuild fallback,
    verify-before-condemn, and a final verification sweep repeated to a
    clean fixpoint.  ``members`` restricts the peel to a node subset
    (the session layer's monotone seeds); peeling any superset of the
    core converges to the same unique fixpoint, so the result set is
    independent of the seed.

    ``frontier`` turns the peel into a **seeded re-peel**: only frontier
    nodes get an initial fresh DP; every other member is *trusted* — it
    satisfied the peel condition in a previous fixpoint whose live set
    restricted to its (unchanged) incident row can only shrink through
    the cascade, or grow monotonically when re-admitting a region — and
    is evaluated lazily, with a fresh DP, the first time a dying
    neighbor touches it.  The caller's contract: ``frontier`` must cover
    every member whose incident edges changed since the trusted state
    was a fixpoint.  Untouched trusted nodes then survive by
    construction, so the seeded re-peel converges to exactly the full
    peel's fixpoint while visiting only the dirty region.  The
    deterministic-core prefilter is skipped in frontier mode — it would
    condemn nodes without notifying their neighbors, which is only sound
    when every live node gets an initial DP.

    Two flat-array specifics beyond the legacy code, neither of which
    can change the fixpoint:

    * per-node DP rows live in one preallocated float buffer with a
      uniform ``k + 1`` stride;
    * the final sweep rebuilds only *stale* nodes (those holding an
      incremental Eq. (6) update since their last fresh DP): a node
      untouched since its rebuild would reproduce that division-free DP
      bit for bit, so re-running it cannot change the decision.
    """
    validate_k(k)
    tau = validate_tau(tau)
    n = cpg.n
    tau_floor = threshold_floor(tau)
    rf = cpg.row_offsets
    ids = cpg.nbr_ids
    ps = cpg.nbr_probs

    dead = _initial_dead(cpg, members)
    if frontier is None:
        core = cpg.core_ids()
        for i in range(n):
            # Definition 6 prefilter: xi_u <= c_u, so core number < k
            # means the node cannot survive any (k, tau)-peel.
            if core[i] < k:
                dead[i] = 1

    stride = k + 1
    state = [0.0] * (n * stride)
    zero_row = [0.0] * k
    tau_deg = [0] * n
    stale = bytearray(n)
    queued = bytearray(n)
    known = bytearray(n)
    p_limit = STABLE_P_LIMIT

    def rebuild(i: int) -> int:
        """Fresh Eq. (5) DP over live incident edges, in incident order."""
        off = i * stride
        state[off] = 1.0
        state[off + 1 : off + stride] = zero_row
        h = 0
        for j in range(rf[i], rf[i + 1]):
            if dead[ids[j]]:
                continue
            p = ps[j]
            q = 1.0 - p
            h += 1
            top = h if h < k else k
            for x in range(off + top, off, -1):
                state[x] = p * state[x - 1] + q * state[x]
        r = 0
        for x in range(off + 1, off + stride):
            # Hot path: tau_floor = threshold_floor(tau), the exact
            # prob_at_least comparison.
            if state[x] >= tau_floor:  # repro-lint: ignore[RPL001]
                r += 1
            else:
                break
        tau_deg[i] = r
        stale[i] = 0
        known[i] = 1
        return r

    if frontier is None:
        seeds = [i for i in range(n) if not dead[i]]
    else:
        seeds = _frontier_seeds(cpg, frontier, dead)
    worklist: list[int] = []
    for i in seeds:
        if rebuild(i) < k:
            queued[i] = 1
            worklist.append(i)
    frontier_bucket = worklist

    while True:
        # Bucketed worklist: drain the current frontier, collecting the
        # next round's condemnations into a fresh bucket (FIFO semantics
        # without the deque).
        while frontier_bucket:
            bucket: list[int] = []
            for i in frontier_bucket:
                dead[i] = 1
                for j in range(rf[i], rf[i + 1]):
                    v = ids[j]
                    if dead[v] or queued[v]:
                        continue
                    if not known[v]:
                        # Trusted member touched for the first time:
                        # evaluate with a fresh DP (no state to patch).
                        if rebuild(v) < k:
                            queued[v] = 1
                            bucket.append(v)
                        continue
                    p = ps[j]
                    if p < p_limit:
                        # Eq. (6) in place: read each old entry before
                        # overwriting, tracking the updated predecessor.
                        upto = tau_deg[v]
                        off = v * stride
                        q = 1.0 - p
                        prev = state[off]
                        new_deg = upto
                        x = off
                        for t in range(1, upto + 1):
                            x += 1
                            val = (state[x] - p * prev) / q
                            state[x] = val
                            prev = val
                            # Hot path: threshold_floor(tau) comparison.
                            if val < tau_floor:  # repro-lint: ignore[RPL001]
                                new_deg = t - 1
                                break
                        stale[v] = 1
                        if new_deg >= k:
                            tau_deg[v] = new_deg
                            continue
                    # p too close to 1 for the division, or the update
                    # claims v fell below k: verify with a fresh,
                    # division-free DP before condemning.
                    if rebuild(v) < k:
                        queued[v] = 1
                        bucket.append(v)
            frontier_bucket = bucket

        # Final verification sweep: recompute survivors whose state
        # carries incremental drift; continue peeling to a clean
        # fixpoint.  Trusted members never touched by the cascade have
        # ``stale == 0`` and are skipped — their survival is the seeded
        # re-peel's invariant, not something to recheck.
        frontier_bucket = []
        for i in range(n):
            if dead[i] or not stale[i]:
                continue
            if rebuild(i) < k:
                queued[i] = 1
                frontier_bucket.append(i)
        if not frontier_bucket:
            nodes = cpg.nodes
            return {nodes[i] for i in range(n) if not dead[i]}


def distribution_peel(
    cpg: CompiledPruneGraph,
    k: int,
    tau: float,
    members: Iterable[Node] | None = None,
    frontier: Iterable[Node] | None = None,
) -> set[Node]:
    """DPCore (the Bonchi et al. [16] baseline) over the compiled arrays.

    Semantics of :func:`repro.core.ktau_core.dp_core` with
    ``engine="legacy"``: per-node state is the ``Pr(d = i)`` prefix up
    to the current tau-degree, built lazily column by column (Eq. 3)
    and updated on deletion with Eq. (4), under the same
    verify-before-condemn + final-sweep discipline.  The two column
    scratch buffers are preallocated once at the maximum degree and
    reused across every rebuild (each rebuild writes the ``0..d`` prefix
    it reads, so reuse is float-exact).

    ``frontier`` requests a seeded re-peel with the same trusted-member
    contract as :func:`survival_peel`: only frontier members get an
    initial DP, everyone else is evaluated lazily when the cascade first
    touches them.
    """
    validate_k(k)
    tau = validate_tau(tau)
    n = cpg.n
    tau_floor = threshold_floor(tau)
    rf = cpg.row_offsets
    ids = cpg.nbr_ids
    ps = cpg.nbr_probs

    dead = _initial_dead(cpg, members)
    max_degree = 0
    for i in range(n):
        d = rf[i + 1] - rf[i]
        if d > max_degree:
            max_degree = d
    col_buf = [0.0] * (max_degree + 1)
    nxt_buf = [0.0] * (max_degree + 1)

    state: list[list[float]] = [[] for _ in range(n)]
    tau_deg = [0] * n
    stale = bytearray(n)
    queued = bytearray(n)
    known = bytearray(n)
    p_limit = STABLE_P_LIMIT

    def rebuild(i: int) -> int:
        """Fresh lazy Eq. (3) prefix DP over live incident edges."""
        probs = [
            ps[j] for j in range(rf[i], rf[i + 1]) if not dead[ids[j]]
        ]
        d = len(probs)
        col = col_buf
        nxt = nxt_buf
        col[0] = 1.0
        for h in range(1, d + 1):
            col[h] = col[h - 1] * (1.0 - probs[h - 1])
        eq = [col[d]]
        survival = 1.0
        r = 0
        for t in range(d):
            survival -= eq[t]
            # Hot path: prob_below(survival, tau) exactly.
            if survival < tau_floor:  # repro-lint: ignore[RPL001]
                break
            r = t + 1
            nxt[0] = 0.0
            for h in range(1, d + 1):
                p = probs[h - 1]
                nxt[h] = p * col[h - 1] + (1.0 - p) * nxt[h - 1]
            col, nxt = nxt, col
            eq.append(col[d])
        state[i] = eq
        tau_deg[i] = r
        stale[i] = 0
        known[i] = 1
        return r

    if frontier is None:
        seeds = [i for i in range(n) if not dead[i]]
    else:
        seeds = _frontier_seeds(cpg, frontier, dead)
    frontier_bucket: list[int] = []
    for i in seeds:
        if rebuild(i) < k:
            queued[i] = 1
            frontier_bucket.append(i)

    while True:
        while frontier_bucket:
            bucket: list[int] = []
            for i in frontier_bucket:
                dead[i] = 1
                for j in range(rf[i], rf[i + 1]):
                    v = ids[j]
                    if dead[v] or queued[v]:
                        continue
                    if not known[v]:
                        if rebuild(v) < k:
                            queued[v] = 1
                            bucket.append(v)
                        continue
                    p = ps[j]
                    if p < p_limit:
                        # Eq. (4) in place on the prefix.
                        deg = tau_deg[v]
                        eq = state[v]
                        q = 1.0 - p
                        prev = eq[0] / q
                        eq[0] = prev
                        for t in range(1, deg + 1):
                            prev = (eq[t] - p * prev) / q
                            eq[t] = prev
                        survival = 1.0
                        r = 0
                        for t in range(deg):
                            survival -= eq[t]
                            # Hot path: prob_below(survival, tau).
                            if survival < tau_floor:  # repro-lint: ignore[RPL001]
                                break
                            r = t + 1
                        stale[v] = 1
                        if r >= k:
                            tau_deg[v] = r
                            continue
                    if rebuild(v) < k:
                        queued[v] = 1
                        bucket.append(v)
            frontier_bucket = bucket

        frontier_bucket = []
        for i in range(n):
            if dead[i] or not stale[i]:
                continue
            if rebuild(i) < k:
                queued[i] = 1
                frontier_bucket.append(i)
        if not frontier_bucket:
            nodes = cpg.nodes
            return {nodes[i] for i in range(n) if not dead[i]}


def topk_peel(
    cpg: CompiledPruneGraph,
    k: int,
    tau: float,
    members: Iterable[Node] | None = None,
    fixed: AbstractSet[Node] | None = None,
    frontier: Iterable[Node] | None = None,
) -> frozenset[Node] | None:
    """Algorithm 3's (Top_k, tau)-core peel over the compiled arrays.

    Each survival check multiplies the ``k`` highest live incident
    probabilities in ascending order — the exact float sequence of the
    legacy ``math.prod(sorted(probs)[-k:])`` — against
    ``threshold_floor(tau)``.  The peel condition is monotone under node
    removal, so the surviving fixpoint is unique regardless of worklist
    order, and a ``fixed`` node (the paper's ``V_I``) is condemned under
    *some* order iff it lies outside that fixpoint — the early ``None``
    abort is therefore order-independent too.

    ``members`` restricts the peel to an induced subset (ascending rows
    are then re-gathered from live entries); ``fixed`` nodes absent from
    the graph or the member set never abort, matching the legacy peel
    over an induced subgraph that simply does not contain them.

    ``frontier`` requests a seeded re-peel (trusted-member contract of
    :func:`survival_peel`): only frontier members are checked up front,
    every other member's ascending live row is gathered lazily the first
    time the cascade touches it.  Lazy gathers exclude exactly the
    neighbors whose bisect-pop can no longer arrive — non-members and
    already-*drained* condemned nodes — while a condemned-but-undrained
    neighbor stays in the gathered row because its pop is still coming:
    that bookkeeping keeps every row consistent with the pops the drain
    will actually perform, so the fixpoint matches the eager peel's.
    """
    validate_k(k)
    tau = validate_tau(tau)
    n = cpg.n
    nodes = cpg.nodes
    if k == 0:
        # pi_0 is the empty product 1.0, which clears any valid tau.
        if members is None:
            return frozenset(nodes)
        return frozenset(members)
    tau_floor = threshold_floor(tau)
    rf = cpg.row_offsets
    ids = cpg.nbr_ids
    ps = cpg.nbr_probs

    condemned = _initial_dead(cpg, members)
    is_fixed = bytearray(n)
    if fixed:
        index_get = cpg.index.get
        for u in fixed:
            i = index_get(u)
            if i is not None and not condemned[i]:
                is_fixed[i] = 1

    def below(values: list[float]) -> bool:
        # pi_k as the legacy peel computes it: math.prod of the
        # ascending top-k slice multiplies left to right.
        nv = len(values)
        if nv < k:
            return True
        product = 1.0
        for p in values[nv - k :]:
            product *= p
        # Hot path: tau_floor = threshold_floor(tau) fast path.
        return product < tau_floor  # repro-lint: ignore[RPL001]

    if frontier is not None:
        # Seeded re-peel: no pristine-row prefilter (it condemns without
        # notifying neighbors, which is only sound when every member is
        # checked up front) and no eager gather.
        outside = bytes(condemned)
        gathered = bytearray(n)
        drained = bytearray(n)
        vals: list[list[float]] = [[] for _ in range(n)]

        def gather(i: int) -> list[float]:
            row = sorted(
                ps[j]
                for j in range(rf[i], rf[i + 1])
                if not outside[ids[j]] and not drained[ids[j]]
            )
            vals[i] = row
            gathered[i] = 1
            return row

        stack: list[int] = []
        for i in _frontier_seeds(cpg, frontier, condemned):
            if below(gather(i)):
                if is_fixed[i]:
                    return None
                condemned[i] = 1
                stack.append(i)

        while stack:
            u = stack.pop()
            drained[u] = 1
            for j in range(rf[u], rf[u + 1]):
                v = ids[j]
                if condemned[v]:
                    continue
                if not gathered[v]:
                    # Trusted member touched for the first time: the
                    # fresh gather already excludes u (just drained).
                    if below(gather(v)):
                        if is_fixed[v]:
                            return None
                        condemned[v] = 1
                        stack.append(v)
                    continue
                vv = vals[v]
                idx = bisect_left(vv, ps[j])
                vv.pop(idx)
                if idx <= len(vv) - k:
                    continue
                if below(vv):
                    if is_fixed[v]:
                        return None
                    condemned[v] = 1
                    stack.append(v)

        return frozenset(
            nodes[i] for i in range(n) if not condemned[i]
        )

    # Phase 1 — prefilter on the pristine full rows.  pi_k over the
    # whole row upper-bounds pi_k under any node removals (probabilities
    # only leave the top-k window), so a node below tau on its full row
    # is below tau in every restriction: condemning it is sound for the
    # full peel and for any members= subset.  On the registry graphs
    # this one pass settles ~95% of nodes without copying a row or
    # popping a value; phase-1 losers never enter the worklist, so the
    # drain below never walks their edges either — their absence is
    # baked into the phase-2 gather instead.
    asc_rows = cpg.asc_rows
    for i in range(n):
        if condemned[i]:
            continue
        if below(asc_rows[i]):
            if is_fixed[i]:
                return None
            condemned[i] = 1

    # Phase 2 — ascending sorted *live* probabilities for the remnant
    # (the exact state the legacy peel keeps), gathered before any
    # further condemnation so the drain's bisect-pops stay consistent.
    vals: list[list[float]] = [[] for _ in range(n)]
    for i in range(n):
        if condemned[i]:
            continue
        vals[i] = sorted(
            ps[j]
            for j in range(rf[i], rf[i + 1])
            if not condemned[ids[j]]
        )

    stack: list[int] = []
    for i in range(n):
        if condemned[i]:
            continue
        if below(vals[i]):
            if is_fixed[i]:
                return None
            condemned[i] = 1
            stack.append(i)

    while stack:
        u = stack.pop()
        for j in range(rf[u], rf[u + 1]):
            v = ids[j]
            if condemned[v]:
                continue
            vv = vals[v]
            idx = bisect_left(vv, ps[j])
            vv.pop(idx)
            # The top-k product reads only the last k entries; removing
            # a value strictly below that window leaves v's survival
            # unchanged, so the recheck is skipped (equal floats are
            # interchangeable in a product, so the bisect removal is
            # safe for duplicates).
            if idx <= len(vv) - k:
                continue
            if below(vv):
                if is_fixed[v]:
                    return None
                condemned[v] = 1
                stack.append(v)

    return frozenset(nodes[i] for i in range(n) if not condemned[i])
