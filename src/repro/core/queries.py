"""Query layer: targeted maximal-clique questions.

Downstream applications rarely want *all* maximal (k, tau)-cliques; they
ask focused questions: "which reliable groups contain this user?", "can
this candidate set be extended?", "is this set itself one of the answers?".
This module answers those without a full enumeration by reusing the
fixed-set variant of Algorithm 3 (the ``V_I`` parameter the paper
introduces exactly for anchored searches) and restricting the
set-enumeration to the anchor's neighborhood.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.enumeration import maximal_cliques
from repro.core.topk_core import topk_core
from repro.errors import NodeNotFoundError
from repro.uncertain.clique_prob import clique_probability, is_clique
from repro.uncertain.graph import Node, UncertainGraph
from repro.utils.validation import prob_at_least, validate_k, validate_tau

__all__ = [
    "cliques_containing",
    "is_extendable",
    "containing_clique_exists",
]


def cliques_containing(
    graph: UncertainGraph,
    node: Node,
    k: int,
    tau: float,
) -> Iterator[frozenset[Node]]:
    """Yield every maximal (k, tau)-clique of ``graph`` containing ``node``.

    Restricts the search to the closed neighborhood of ``node``: any
    clique containing the node lives there, and any extender of such a
    clique is adjacent to the node, hence also lives there — so maximal
    cliques containing ``node`` are in exact bijection between the full
    graph and the neighborhood subgraph.  The subgraph is further pruned
    with the anchored (Top_k, tau)-core (Algorithm 3's ``V_I``), which
    aborts immediately when the node itself cannot survive.
    """
    validate_k(k)
    tau = validate_tau(tau)
    if not graph.has_node(node):
        raise NodeNotFoundError(node)

    neighborhood = set(graph.neighbors(node)) | {node}
    sub = graph.induced_subgraph(neighborhood)
    anchored = topk_core(sub, k, tau, fixed={node})
    if not anchored:
        return
    core_sub = sub.induced_subgraph(anchored.nodes)
    for clique in maximal_cliques(core_sub, k, tau, pruning="none"):
        if node in clique:
            yield clique


def is_extendable(
    graph: UncertainGraph,
    nodes: Iterable[Node],
    tau: float,
) -> bool:
    """Whether some single node can extend ``nodes`` to a larger
    tau-clique (the complement of the maximality condition)."""
    tau = validate_tau(tau)
    members = list(dict.fromkeys(nodes))
    if not members:
        return graph.num_nodes > 0
    if not is_clique(graph, members):
        return False
    base = clique_probability(graph, members)
    member_set = set(members)
    for v in graph.neighbors(members[0]):
        if v in member_set:
            continue
        extension = base
        incident = graph.incident(v)
        for u in members:
            p = incident.get(u)
            if p is None:
                extension = 0.0
                break
            extension *= p
        if extension and prob_at_least(extension, tau):
            return True
    return False


def containing_clique_exists(
    graph: UncertainGraph,
    nodes: Iterable[Node],
    k: int,
    tau: float,
) -> bool:
    """Whether some maximal (k, tau)-clique contains all of ``nodes``.

    Equivalent to: ``nodes`` is a tau-clique and can be grown (possibly
    by zero steps) to size above ``k`` while keeping ``CPr >= tau``.
    Decided by an anchored search on the common neighborhood.
    """
    validate_k(k)
    tau = validate_tau(tau)
    members = list(dict.fromkeys(nodes))
    if not members:
        return False
    if not is_clique(graph, members):
        return False
    if not prob_at_least(clique_probability(graph, members), tau):
        return False
    if len(members) > k:
        return True  # already a (k, tau)-clique; some maximal one holds it

    # Grow within the common neighborhood of the anchor set.
    common = set(graph.neighbors(members[0]))
    for u in members[1:]:
        common &= set(graph.neighbors(u))
    region = common | set(members)
    sub = graph.induced_subgraph(region)
    anchored = topk_core(sub, k, tau, fixed=set(members))
    if not anchored:
        return False
    core_sub = sub.induced_subgraph(anchored.nodes)
    member_set = set(members)
    for clique in maximal_cliques(core_sub, k, tau, pruning="none"):
        if member_set <= clique:
            return True
    return False
