"""Query layer: targeted maximal-clique questions.

Downstream applications rarely want *all* maximal (k, tau)-cliques; they
ask focused questions: "which reliable groups contain this user?", "can
this candidate set be extended?", "is this set itself one of the answers?".
This module answers those without a full enumeration by reusing the
fixed-set variant of Algorithm 3 (the ``V_I`` parameter the paper
introduces exactly for anchored searches) and restricting the
set-enumeration to the anchor's neighborhood.

The functions here are one-shot wrappers over the session layer: each
call builds a throwaway :class:`~repro.core.session.PreparedGraph` and
delegates to the method of the same name.  Callers issuing repeated
queries against one graph should hold a session themselves — anchored
cores and their compiled components are then cached across calls.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.enumeration import Engine
from repro.core.session import PreparedGraph
from repro.uncertain.graph import Node, UncertainGraph

__all__ = [
    "cliques_containing",
    "is_extendable",
    "containing_clique_exists",
]


def cliques_containing(
    graph: UncertainGraph,
    node: Node,
    k: int,
    tau: float,
    engine: Engine = "pivot",
    jobs: int | None = 1,
) -> Iterator[frozenset[Node]]:
    """Yield every maximal (k, tau)-clique of ``graph`` containing ``node``.

    Restricts the search to the closed neighborhood of ``node``: any
    clique containing the node lives there, and any extender of such a
    clique is adjacent to the node, hence also lives there — so maximal
    cliques containing ``node`` are in exact bijection between the full
    graph and the neighborhood subgraph.  The subgraph is further pruned
    with the anchored (Top_k, tau)-core (Algorithm 3's ``V_I``), which
    aborts immediately when the node itself cannot survive.

    ``engine`` selects the search core for the inner enumeration and
    ``jobs`` its worker-process count, with the same contract as
    :func:`repro.core.enumeration.maximal_cliques` (any combination
    yields bit-identical cliques in identical order).
    """
    return PreparedGraph(graph).cliques_containing(
        node, k, tau, engine=engine, jobs=jobs
    )


def is_extendable(
    graph: UncertainGraph,
    nodes: Iterable[Node],
    tau: float,
    engine: Engine = "pivot",
    jobs: int | None = 1,
) -> bool:
    """Whether some single node can extend ``nodes`` to a larger
    tau-clique (the complement of the maximality condition).

    ``engine`` / ``jobs`` are accepted for query-API symmetry and
    validated, but unused: this query is a neighborhood scan with no
    search phase to configure.
    """
    return PreparedGraph(graph).is_extendable(
        nodes, tau, engine=engine, jobs=jobs
    )


def containing_clique_exists(
    graph: UncertainGraph,
    nodes: Iterable[Node],
    k: int,
    tau: float,
    engine: Engine = "pivot",
    jobs: int | None = 1,
) -> bool:
    """Whether some maximal (k, tau)-clique contains all of ``nodes``.

    Equivalent to: ``nodes`` is a tau-clique and can be grown (possibly
    by zero steps) to size above ``k`` while keeping ``CPr >= tau``.
    Decided by an anchored search on the common neighborhood, with
    ``engine`` / ``jobs`` configuring that search exactly as on
    :func:`repro.core.enumeration.maximal_cliques`.
    """
    return PreparedGraph(graph).containing_clique_exists(
        nodes, k, tau, engine=engine, jobs=jobs
    )
