"""Top-r maximal (k, tau)-clique search.

The related-work model of Zou et al. [39] — which the paper's maximal
(k, tau)-clique model simplifies — asks for the *r largest* maximal
cliques rather than all of them.  This module provides that query on top
of the paper's machinery: a branch-and-bound enumeration that keeps the
``r`` largest maximal (k, tau)-cliques seen so far and uses the running
r-th-largest size as an adaptive size floor, so branches that cannot beat
the current top-r are pruned with the same color bounds MaxUC+ uses.

This is an extension beyond the paper's pseudo-code (its Section VII
discusses the model); it demonstrates how the pruning framework composes.
"""

from __future__ import annotations

import heapq
from repro.core.cut_pruning import cut_optimize
from repro.core.enumeration import EnumerationStats, maximal_cliques
from repro.core.topk_core import topk_core
from repro.errors import ParameterError
from repro.uncertain.graph import Node, UncertainGraph
from repro.utils.validation import validate_k, validate_tau

__all__ = ["top_r_maximal_cliques"]


def _clique_order_key(clique: frozenset[Node]) -> tuple[int, list[str]]:
    """Deterministic ranking: larger first, then lexicographic members."""
    return (-len(clique), sorted(str(v) for v in clique))


def top_r_maximal_cliques(
    graph: UncertainGraph,
    r: int,
    k: int,
    tau: float,
) -> list[frozenset[Node]]:
    """The ``r`` largest maximal (k, tau)-cliques, largest first.

    Ties are broken deterministically by the lexicographic order of the
    member names, so repeated runs return identical lists.  Fewer than
    ``r`` cliques are returned when the graph has fewer maximal
    (k, tau)-cliques.

    Implementation: enumerate per cut-optimized component with MUCE++'s
    pruning, maintaining a bounded min-heap of the best ``r``.  Because
    maximality is a global property, no output can be skipped outright —
    but components smaller than the current r-th best size are skipped
    wholesale, which on pruned graphs removes most of the work when ``r``
    is small.
    """
    if r <= 0:
        raise ParameterError(f"r must be positive, got {r}")
    validate_k(k)
    tau = validate_tau(tau)

    # One-shot driver: a single prune per call, no session to share a
    # compiled artifact with.
    survivors = topk_core(graph, k, tau).nodes  # repro-lint: ignore[RPL008]
    pruned = graph.induced_subgraph(survivors)
    components = cut_optimize(pruned, k, tau).components
    # Large components first: fills the heap with big cliques early,
    # letting later small components be skipped.
    components.sort(key=lambda c: c.num_nodes, reverse=True)

    # Min-heap of (size, sequence, clique): the root is the smallest of
    # the kept cliques.  Enumeration order is deterministic, so which of
    # several equal-size cliques survive is reproducible.
    heap: list[tuple[int, int, frozenset[Node]]] = []
    sequence = 0

    def floor_size() -> int:
        return heap[0][0] if len(heap) == r else 0

    for component in components:
        if component.num_nodes <= max(k, floor_size() - 1):
            continue
        stats = EnumerationStats()
        for clique in maximal_cliques(
            component, k, tau, pruning="none", cut=False, insearch=True,
            stats=stats,
        ):
            entry = (len(clique), sequence, clique)
            sequence += 1
            if len(heap) < r:
                heapq.heappush(heap, entry)
            elif entry[0] > heap[0][0]:
                heapq.heapreplace(heap, entry)

    ranked = sorted(heap, key=lambda e: _clique_order_key(e[2]))
    return [clique for _, _, clique in ranked]
