"""Composable stages of the clique-search flow: prune, cut, compile, search.

The monolithic drivers (``maximal_cliques``, ``max_uc_plus``) are decomposed
here into four explicit stages, each a pure function from graph state and
parameters to a deterministic artifact:

* :func:`prune_stage` — core-based preprocessing (Lemmas 1 and 4); returns
  the surviving nodes **in graph iteration order**, so the artifact is
  reproducible no matter which engine peeled or which cached seed the
  session layer supplied.
* :func:`cut_stage` — cut optimization / component split (Lemma 5); returns
  the component subgraphs plus the counters the stats objects report.
* :func:`compile_stage` — the **single whole-graph lowering**: one
  parameter-free :class:`~repro.core.prune_kernel.CompiledGraph` per graph
  version serves the prune peels *and* the per-component search views, so
  a cold query compiles the graph exactly once.
* :func:`compile_enumeration_stage` / :func:`compile_maximum_stage` /
  :func:`color_stage` — per-component search preparation: the picklable
  :class:`~repro.core.kernel.CompiledComponent` CSR bundles for the compiled
  engines (plus color arrays for the maximum search) and the greedy-coloring
  dicts for the legacy maximum search.  When handed the
  :func:`compile_stage` artifact, these *derive* the component views from
  the whole-graph arrays (member-filtered rows, no recompilation); the
  from-scratch :func:`~repro.core.kernel.compile_component` path remains as
  the fallback and the parity oracle.
* :func:`enumeration_search_stage` / :func:`maximum_search_stage` — the
  actual search, sequential or process-parallel, consuming the compile
  artifacts.

Stage artifacts carry **no counters and no wall clocks** — those belong to
the per-run stats objects, which the search stages fill identically on
every run.  That split is what makes memoization sound: replaying a cached
artifact through the search stage yields bit-identical cliques, yield
order, and stats counters to a cold run.

Inside :mod:`repro.core` the only intended caller is the session layer
(:class:`repro.core.session.PreparedGraph`), which memoizes the artifacts
keyed by the graph's :attr:`~repro.uncertain.graph.UncertainGraph.version`;
repro-lint rule RPL007 flags direct stage calls that bypass it.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterator, Sequence

from repro.core.cut_pruning import cut_optimize
from repro.core.enumeration import (
    EnumerationStats,
    _muc,
    _ordered,
)
from repro.core.kernel import (
    CompiledComponent,
    compile_component,
    derive_component_view,
    enum_root_prep,
    enumerate_pivot_range,
    enumerate_root_range,
    maximum_compiled,
    pivot_root_plan,
)
from repro.core.ktau_core import dp_core_plus
from repro.core.maximum import MaximumSearchStats, _search_component_legacy
from repro.core.prune_kernel import CompiledGraph, compile_graph
from repro.deterministic.coloring import greedy_coloring
from repro.deterministic.components import component_subgraphs
from repro.uncertain.graph import Node, UncertainGraph

__all__ = [
    "CutArtifact",
    "compile_stage",
    "prune_stage",
    "cut_stage",
    "compile_enumeration_stage",
    "compile_maximum_stage",
    "color_stage",
    "enumeration_search_stage",
    "maximum_search_stage",
]


# ----------------------------------------------------------------------
# Stage 0: compile (shared by prune and search)
# ----------------------------------------------------------------------

def compile_stage(graph: UncertainGraph) -> CompiledGraph:
    """Lower the graph into the unified flat-CSR artifact **once**.

    Parameter-free (no ``k``, no ``tau``): one compile per graph version
    serves every prune of every query *and* every search-view derivation,
    which is why the session layer memoizes this artifact under
    ``(version, "compile")`` and hands it to each :func:`prune_stage`
    call — including the monotone-seeded peels, which replay over the
    same arrays via ``members=`` — and to the search compile stages,
    which derive their per-component :class:`CompiledComponent` views
    from the whole-graph rows instead of recompiling the subgraphs.
    """
    return compile_graph(graph)


def prune_stage(
    graph: UncertainGraph,
    k: int,
    tau: float,
    rule: str,
    engine: str,
    compiled: CompiledGraph | None = None,
    members: Sequence[Node] | None = None,
    core: dict[Node, int] | None = None,
) -> tuple[Node, ...]:
    """Core-based preprocessing: the nodes surviving ``rule`` at (k, tau).

    ``rule`` is ``"topk"`` ((Top_k, tau)-core, Lemma 4), ``"ktau"``
    ((k, tau)-core via DPCore+, Lemma 1) or ``"none"``.  The survivors are
    returned as a tuple **in the iteration order of ``graph``** — both
    peels produce the same unique fixpoint *set* whichever engine peeled
    or which cached seed the session layer supplied, and normalizing the
    order makes the artifact independent of the peel's internal set
    layout, so a cached artifact reproduces a cold run's downstream
    component order exactly.

    ``compiled`` supplies the :func:`compile_stage` artifact for
    the compiled (``"bitset"``) engine and ``members`` restricts its peel
    to a node subset (the session's monotone seed) without building an
    induced subgraph; ``core`` supplies memoized deterministic core
    numbers to the legacy ``ktau`` peel.
    """
    # The peels are looked up on the enumeration module at call time:
    # they are its re-exported attributes by contract, and the laziness
    # regression test monkeypatches them there to prove no pruning runs
    # before a consumer starts iterating.
    from repro.core import enumeration as enumeration_mod

    survivors: frozenset[Node] | set[Node]
    if rule == "none":
        return tuple(graph.nodes())
    if rule == "topk":
        # Same fixpoint either way; the bitset engine uses the compiled
        # array peel so large graphs skip the per-edge hashing/bisects.
        if engine == "bitset":
            survivors = set(enumeration_mod.topk_core_arrays(
                graph, k, tau, compiled=compiled, members=members,
            ))
        else:
            survivors = set(enumeration_mod.topk_core(
                graph, k, tau, engine="legacy",
            ).nodes)
    elif rule == "ktau":
        if engine == "bitset":
            survivors = dp_core_plus(
                graph, k, tau, engine="arrays",
                compiled=compiled, members=members,
            )
        else:
            survivors = dp_core_plus(
                graph, k, tau, engine="legacy", core=core,
            )
    else:
        raise ValueError(f"unknown pruning rule {rule!r}")
    if members is None and len(survivors) == graph.num_nodes:
        return tuple(graph.nodes())
    return tuple(u for u in graph if u in survivors)


# ----------------------------------------------------------------------
# Stage 2: cut
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CutArtifact:
    """Outcome of :func:`cut_stage`, ready for memoization.

    ``components`` are independent induced subgraphs (never mutated by the
    search stages, so they can be replayed across runs); the counter
    fields carry everything the enumeration stats report about the
    pre-search phases, so a warm run fills its stats object identically
    to the cold run that built the artifact.
    """

    components: tuple[UncertainGraph, ...]
    cuts_found: int
    edges_removed: int
    nodes_after_pruning: int


def cut_stage(
    pruned: UncertainGraph,
    k: int,
    tau: float,
    cut: bool,
    nodes_after_pruning: int,
    engine: str = "bitset",
) -> CutArtifact:
    """Split the pruned graph into search components (Lemma 5).

    With ``cut=True`` runs the cut-based optimization; otherwise a plain
    connected-component split.  ``nodes_after_pruning`` is carried through
    from the prune stage so the artifact is self-contained.  ``engine``
    selects the peel implementation for the cut optimization's fringe
    stage (``"bitset"`` maps to the compiled arrays peel); both engines
    find the identical cut set, so the artifact is engine-independent.
    """
    if cut:
        result = cut_optimize(
            pruned, k, tau,
            engine="arrays" if engine == "bitset" else "legacy",
        )
        return CutArtifact(
            components=tuple(result.components),
            cuts_found=result.cuts_found,
            edges_removed=result.edges_removed,
            nodes_after_pruning=nodes_after_pruning,
        )
    return CutArtifact(
        components=tuple(component_subgraphs(pruned)),
        cuts_found=0,
        edges_removed=0,
        nodes_after_pruning=nodes_after_pruning,
    )


# ----------------------------------------------------------------------
# Stage 3: compile
# ----------------------------------------------------------------------

def _component_view(
    component: UncertainGraph,
    artifact: CompiledGraph | None,
) -> CompiledComponent:
    """The search view of one component: derived from the whole-graph
    artifact when available (member-filtered rows, no recompilation —
    sound because pruning removes nodes only and every cut edge crosses
    component boundaries), else compiled from the subgraph."""
    if artifact is not None:
        return derive_component_view(artifact, list(component.nodes()))
    return compile_component(component)


def compile_enumeration_stage(
    components: Sequence[UncertainGraph],
    min_size: int,
    component_limit: int,
    artifact: CompiledGraph | None = None,
) -> tuple[CompiledComponent | None, ...]:
    """Compile each component the kernel enumeration will search.

    One slot per component, in order: a picklable
    :class:`~repro.core.kernel.CompiledComponent` when the component is
    searchable by the compiled kernel (``min_size <= n <= limit``), else
    ``None`` — the search stage re-derives *why* a slot is ``None`` from
    the component size (too small: skipped; too large: legacy fallback).

    ``artifact`` is the :func:`compile_stage` whole-graph lowering; when
    supplied, the views are derived from its rows (bit-identical to the
    from-scratch compile, see ``tests/core/test_compiled_graph``).
    """
    compiled: list[CompiledComponent | None] = []
    for component in components:
        if min_size <= component.num_nodes <= component_limit:
            compiled.append(_component_view(component, artifact))
        else:
            compiled.append(None)
    return tuple(compiled)


def compile_maximum_stage(
    components: Sequence[UncertainGraph],
    k: int,
    artifact: CompiledGraph | None = None,
) -> tuple[tuple[CompiledComponent, list[int]] | None, ...]:
    """Eagerly compile each component the bitset maximum search could visit.

    A component can only be searched when it beats the starting incumbent
    (``n > k``); eligible slots hold the compiled component plus its
    greedy-coloring mapped onto the compiled node order (the exact pair
    :func:`repro.core.kernel.maximum_compiled` consumes and the parallel
    layer ships to workers).

    This is the eager whole-front variant; the session layer instead
    memoizes on demand through :func:`maximum_search_stage`, because the
    sequential search skips components the growing incumbent dominates
    and never needs their compile.
    """
    compiled: list[tuple[CompiledComponent, list[int]] | None] = []
    for component in components:
        if component.num_nodes <= k:
            compiled.append(None)
            continue
        comp = _component_view(component, artifact)
        coloring = greedy_coloring(component)
        compiled.append((comp, [coloring[u] for u in comp.nodes]))
    return tuple(compiled)


def color_stage(
    components: Sequence[UncertainGraph],
    k: int,
) -> tuple[dict[Node, int] | None, ...]:
    """Greedy colorings for the legacy maximum search (one per eligible
    component, ``None`` for components the incumbent chain always skips)."""
    return tuple(
        greedy_coloring(component) if component.num_nodes > k else None
        for component in components
    )


# ----------------------------------------------------------------------
# Stage 4: search
# ----------------------------------------------------------------------

def enumeration_search_stage(
    components: Sequence[UncertainGraph],
    compiled: Sequence[CompiledComponent | None] | None,
    k: int,
    tau_floor: float,
    min_size: int,
    insearch: bool,
    insearch_min_candidates: int,
    engine: str,
    n_jobs: int,
    component_limit: int,
    stats: EnumerationStats,
) -> Iterator[frozenset[Node]]:
    """Run the per-component enumeration over the compile artifacts.

    Yields exactly the sequence the historical monolithic driver produced
    for ``"bitset"``/``"legacy"`` (components in order, oversized
    components through the legacy recursion, compiled ones through the
    kernel, ``n_jobs > 1`` through the deterministic-merge parallel
    layer); ``"pivot"`` emits the identical *set* per component in pivot
    branch order.  All counters accrue to ``stats`` on every run (they
    are never part of a cached artifact).
    """
    if engine in ("bitset", "pivot") and n_jobs > 1:
        from repro.core.parallel import enumerate_parallel

        yield from enumerate_parallel(
            components, k, tau_floor, min_size, insearch,
            insearch_min_candidates, component_limit, n_jobs, stats,
            compiled=compiled, engine=engine,
        )
        return

    for ordinal, component in enumerate(components):
        if component.num_nodes < min_size:
            continue
        comp = compiled[ordinal] if compiled is not None else None
        if engine in ("bitset", "pivot") and comp is not None:
            # The compiled fast path: enumerate_component minus its
            # compile step (the artifact already paid it), same prep /
            # range composition, same counters, same timings shape.
            t_start = perf_counter()
            cands = enum_root_prep(
                comp, k, tau_floor, min_size, insearch,
                insearch_min_candidates, stats,
            )
            out: list[frozenset[Node]] = []
            if cands is not None:
                if engine == "pivot":
                    branches = pivot_root_plan(
                        comp, k, tau_floor, min_size, cands, stats,
                    )
                    out = enumerate_pivot_range(
                        comp, k, tau_floor, min_size, insearch,
                        insearch_min_candidates, cands, branches,
                        0, len(branches), stats,
                    )
                else:
                    out = enumerate_root_range(
                        comp, k, tau_floor, min_size, insearch,
                        insearch_min_candidates, cands, 0, len(cands),
                        stats,
                    )
            stats.timings.add("search", perf_counter() - t_start)
            yield from out
        else:
            # Legacy engine, or a component above the kernel limit: the
            # tuple-list recursion, interleaved with the consumer.
            candidates = [(v, 1.0) for v in _ordered(component.nodes())]
            yield from _muc(
                component, [], 1.0, candidates, [], k, tau_floor,
                min_size, insearch, stats,
            )


def _compiled_maximum_entry(
    memo: dict[int, tuple[CompiledComponent, list[int]]] | None,
    ordinal: int,
    component: UncertainGraph,
    stats: MaximumSearchStats,
    artifact: CompiledGraph | None = None,
) -> tuple[CompiledComponent, list[int]]:
    """The (compiled component, color list) pair for one component,
    compiled on demand and memoized.

    Compilation stays **lazy with respect to the evolving incumbent** —
    exactly as the historical driver, which only compiled a component
    once the search actually reached it with ``n > best_size``.  An
    eager compile-everything stage would pay compilation and coloring
    for every component a growing incumbent later skips.  ``artifact``
    routes the view derivation through the whole-graph compile.
    """
    entry = memo.get(ordinal) if memo is not None else None
    if entry is None:
        t_start = perf_counter()
        comp = _component_view(component, artifact)
        coloring = greedy_coloring(component)
        entry = (comp, [coloring[u] for u in comp.nodes])
        stats.timings.add("compile", perf_counter() - t_start)
        if memo is not None:
            memo[ordinal] = entry
    return entry


def maximum_search_stage(
    components: Sequence[UncertainGraph],
    compiled: dict[int, tuple[CompiledComponent, list[int]]] | None,
    colors: dict[int, dict[Node, int]] | None,
    k: int,
    tau: float,
    tau_floor: float,
    min_size: int,
    use_advanced_one: bool,
    use_advanced_two: bool,
    insearch: bool,
    engine: str,
    n_jobs: int,
    stats: MaximumSearchStats,
    artifact: CompiledGraph | None = None,
) -> tuple[list[Node] | None, int]:
    """Run the MaxUC+ component loop, compiling on demand into the memos.

    Returns ``(best, best_size)`` exactly as the historical monolithic
    driver: components in order under the evolving incumbent, bitset
    components through :func:`repro.core.kernel.maximum_compiled`, legacy
    ones through the extracted closure, ``n_jobs > 1`` through the
    two-phase speculative parallel layer.

    ``compiled`` / ``colors`` are mutable memo dicts (ordinal -> compile
    artifact), filled lazily as the incumbent chain reaches components —
    the session layer caches the dict objects, so a warm run finds the
    cold run's entries and the cold run never compiles a component the
    incumbent skips.  The search path is deterministic, so which
    ordinals get filled is too.  Pass ``None`` to disable memoization.

    The branch-and-bound's DFS-first output depends on branch order, so
    ``engine="pivot"`` runs the exact bitset search (identical outputs
    and stats; the pivot counters stay zero).
    """
    if engine == "pivot":
        engine = "bitset"
    if engine == "bitset" and n_jobs > 1:
        from repro.core.parallel import maximum_parallel

        # The speculative phase A searches every eligible component, so
        # the full precompile is real work, not waste; route it through
        # the memo so a sequential warm run still benefits.
        precompiled: list[tuple[CompiledComponent, list[int]] | None] = [
            _compiled_maximum_entry(compiled, ordinal, component, stats,
                                    artifact)
            if component.num_nodes > k
            else None
            for ordinal, component in enumerate(components)
        ]
        return maximum_parallel(
            components, k, tau_floor, min_size, use_advanced_one,
            use_advanced_two, insearch, n_jobs, stats,
            precompiled=precompiled,
        )

    best: list[Node] | None = None
    best_size = k
    for ordinal, component in enumerate(components):
        if component.num_nodes <= best_size:
            continue
        if engine == "bitset":
            comp, color = _compiled_maximum_entry(
                compiled, ordinal, component, stats, artifact
            )
            t_start = perf_counter()
            improved, best_size = maximum_compiled(
                comp, color, k, tau_floor, min_size, best_size,
                use_advanced_one, use_advanced_two, insearch, stats,
            )
            stats.timings.add("search", perf_counter() - t_start)
            if improved is not None:
                best = improved
            continue
        coloring = colors.get(ordinal) if colors is not None else None
        if coloring is None:
            coloring = greedy_coloring(component)
            if colors is not None:
                colors[ordinal] = coloring
        best, best_size = _search_component_legacy(
            component, coloring, k, tau, tau_floor, min_size, best,
            best_size, use_advanced_one, use_advanced_two, insearch, stats,
        )
    return best, best_size
