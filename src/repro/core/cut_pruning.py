"""Cut-based optimization (Section III-C).

A cut set of a connected uncertain graph is *low-probability* when the
product of its ``k`` highest edge probabilities is below ``tau`` (or the cut
has fewer than ``k`` edges at all) — Eq. (7) and Definition 10.  Lemma 5
shows no maximal (k, tau)-clique subgraph contains an edge of such a cut, so
all its edges can be dropped, splitting the graph into smaller components
that are enumerated independently.

Finding *all* low-probability cuts is intractable; following the paper we
run the Stoer-Wagner maximum-adjacency sweep: grow a set ``S`` by repeatedly
absorbing the node most tightly connected to it (by total incident
probability) and test the cut ``(S, rest)`` after every absorption.  When a
low-probability cut appears, its edges are deleted and both sides are
processed recursively.
"""

from __future__ import annotations


import heapq
import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.prune_kernel import PruneEngine
from repro.core.topk_core import topk_core
from repro.deterministic.components import connected_components
from repro.uncertain.graph import Node, UncertainGraph
from repro.utils.validation import prob_below, validate_k, validate_tau

__all__ = [
    "cut_probability",
    "is_low_probability_cut",
    "cut_optimize",
    "CutOptimizeResult",
]


def cut_probability(cut_probs: Sequence[float], k: int) -> float:
    """``pi_k(E_chi)`` — Eq. (7): the product of the ``k`` largest
    probabilities in the cut, or 0.0 when the cut has fewer than ``k``
    edges."""
    validate_k(k)
    if len(cut_probs) < k:
        return 0.0
    if k == 0:
        return 1.0
    return math.prod(sorted(cut_probs, reverse=True)[:k])


def is_low_probability_cut(
    cut_probs: Sequence[float], k: int, tau: float
) -> bool:
    """Definition 10: whether the cut's top-k product is below ``tau``."""
    tau = validate_tau(tau)
    return prob_below(cut_probability(cut_probs, k), tau)


@dataclass
class CutOptimizeResult:
    """Outcome of :func:`cut_optimize`.

    ``components`` are the connected pieces left after all discovered
    low-probability cuts were removed, as induced uncertain subgraphs.
    ``fringe_nodes_peeled`` counts nodes removed through *single-node*
    low-probability cuts (the TopKCore special case of the paper's
    Remark); ``cuts_found`` counts the multi-node cuts found by sweeps.
    """

    components: list[UncertainGraph]
    cuts_found: int
    edges_removed: int
    fringe_nodes_peeled: int = 0


def cut_optimize(
    graph: UncertainGraph, k: int, tau: float,
    engine: PruneEngine = "arrays",
) -> CutOptimizeResult:
    """Remove low-probability cut sets and return the resulting components.

    The input graph is not modified.  Every edge deleted is justified by
    Lemma 5, so the union of the returned components contains every maximal
    (k, tau)-clique of ``graph``.

    Implementation note: the set of edges incident to one node is itself a
    cut, and testing it is exactly the (Top_k, tau)-core condition — the
    paper's Remark in Section III-C.  Each component is therefore first
    *fringe-peeled* with the TopKCore rule (near-linear) before the
    maximum-adjacency sweep hunts for genuine multi-node cuts; without
    this, a hub-heavy graph makes the sweep strip one thin fringe per
    O(m log m) pass.  ``engine`` selects the peel implementation for that
    stage (the compiled arrays kernel by default); the sweep itself is
    engine-independent, and both engines find the identical cut set.
    """
    validate_k(k)
    tau = validate_tau(tau)
    work = graph.copy()
    cuts_found = 0
    edges_removed = 0
    fringe_peeled = 0

    stack = [component for component in connected_components(work)]
    finished: list[set[Node]] = []
    while stack:
        component = stack.pop()
        if len(component) <= 1:
            finished.append(component)
            continue

        # Stage 1: single-node cuts (TopKCore rule) — cheap fixpoint.
        sub = work.induced_subgraph(component)
        core = set(topk_core(sub, k, tau, engine=engine).nodes)
        dropped = component - core
        if dropped:
            fringe_peeled += len(dropped)
            for v in dropped:
                for u in list(work.incident(v)):
                    if u in component:
                        work.remove_edge(v, u)
                        edges_removed += 1
                finished.append({v})
            for piece in connected_components(
                work.induced_subgraph(core)
            ):
                stack.append(piece)
            continue

        # Stage 2: multi-node cuts via the maximum-adjacency sweep.
        segments, n_cuts, n_removed = _sweep_split(work, component, k, tau)
        if n_cuts == 0:
            finished.append(component)
            continue
        cuts_found += n_cuts
        edges_removed += n_removed
        # Each segment may itself have fallen apart; re-split by
        # connectivity, then process each piece again.
        for segment in segments:
            sub = work.induced_subgraph(segment)
            stack.extend(connected_components(sub))

    components = [work.induced_subgraph(nodes) for nodes in finished]
    return CutOptimizeResult(
        components, cuts_found, edges_removed, fringe_peeled
    )


class _CutTopK:
    """Top-k product over a dynamic multiset of cut-edge probabilities.

    Insertions push onto a lazy max-heap; removals mark the edge key dead
    and are discarded when they surface.  A top-k query pops the k largest
    live entries (cleaning stale ones permanently), multiplies them, and
    pushes them back — O(k log m) amortised, versus the O(m) list
    shuffling a sorted array would need per update.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, frozenset[Node]]] = []
        self._dead: set[frozenset[Node]] = set()
        self._seq = 0
        self.live = 0  # number of edges currently in the cut

    def add(self, key: frozenset[Node], p: float) -> None:
        heapq.heappush(self._heap, (-p, self._seq, key))
        self._seq += 1
        self.live += 1

    def remove(self, key: frozenset[Node]) -> None:
        self._dead.add(key)
        self.live -= 1

    def is_low(self, k: int, tau: float) -> bool:
        """Definition 10 on the current cut."""
        if self.live < k:
            return True
        if k == 0:
            return prob_below(1.0, tau)
        popped: list[tuple[float, int, frozenset[Node]]] = []
        product = 1.0
        while len(popped) < k:
            entry = heapq.heappop(self._heap)
            if entry[2] in self._dead:
                self._dead.discard(entry[2])
                continue
            popped.append(entry)
            product *= -entry[0]
        for entry in popped:
            heapq.heappush(self._heap, entry)
        return prob_below(product, tau)


def _sweep_split(
    work: UncertainGraph, component: set[Node], k: int, tau: float
) -> tuple[list[list[Node]], int, int]:
    """One maximum-adjacency sweep, recording *every* low boundary.

    Grows ``S`` from an arbitrary start node; after each absorption tests
    whether the cut ``(S, component - S)`` is low-probability and, if so,
    flags the boundary.  Every flagged boundary is a genuine
    low-probability cut of the *current* graph, so Lemma 5 independently
    justifies deleting each one — which lets a single sweep find many cuts
    before any re-sweep, instead of restarting after the first hit.

    After the sweep, an edge is deleted exactly when it crosses a flagged
    boundary in the absorption order.  Returns
    ``(segments, cuts_found, edges_removed)`` where ``segments`` are the
    runs of nodes between consecutive flagged boundaries (in absorption
    order); with zero cuts the component is final.
    """
    order: list[Node] = []
    position: dict[Node, int] = {}
    boundary_low: list[bool] = []  # boundary after order[i]

    connection: dict[Node, float] = {u: 0.0 for u in component}
    pending = iter(component)
    start = next(pending)
    heap: list[tuple[float, int, Node]] = [(0.0, 0, start)]
    counter = 1
    cut = _CutTopK()

    while len(order) < len(component):
        while heap:
            neg_w, _, u = heapq.heappop(heap)
            if u not in position and -neg_w == connection[u]:
                break
        else:
            # Disconnected remainder: empty cut, trivially low; restart
            # the sweep from any unabsorbed node.
            boundary_low[-1] = True
            u = next(v for v in pending if v not in position)
            heap = [(0.0, counter, u)]
            counter += 1
            continue
        position[u] = len(order)
        order.append(u)
        for v, p in work.incident(u).items():
            if v not in component:
                continue
            key = frozenset((u, v))
            if v in position:
                cut.remove(key)  # edge now has both endpoints inside S
            else:
                cut.add(key, p)
                connection[v] += p
                heapq.heappush(heap, (-connection[v], counter, v))
                counter += 1
        if len(order) == len(component):
            break
        boundary_low.append(cut.is_low(k, tau))

    flagged = [i for i, low in enumerate(boundary_low) if low]
    if not flagged:
        return [], 0, 0

    # cum[i] = number of flagged boundaries at positions < i; an edge with
    # endpoint positions a < b crosses one iff cum[b] - cum[a] > 0.
    cum = [0] * (len(order) + 1)
    for i in range(len(order)):
        cum[i + 1] = cum[i] + (
            1 if i < len(boundary_low) and boundary_low[i] else 0
        )
    removed = 0
    for u in order:
        pos_u = position[u]
        for v in list(work.incident(u)):
            if v not in component:
                continue
            pos_v = position[v]
            if pos_v < pos_u:
                continue  # handle each edge once, from its earlier end
            if cum[pos_v] - cum[pos_u] > 0:
                # _sweep_split owns its scratch graph (caller passes the
                # working copy cut_optimize built).
                work.remove_edge(u, v)  # repro-lint: ignore[RPL004]
                removed += 1

    segments: list[list[Node]] = []
    begin = 0
    for i in flagged:
        segments.append(order[begin : i + 1])
        begin = i + 1
    segments.append(order[begin:])
    return segments, len(flagged), removed
