"""Brute-force reference implementations (test oracles).

Exponential-time but obviously-correct versions of everything the fast
algorithms compute.  They power the property-based tests: on random small
graphs, the optimized pipelines must agree with these exactly.
"""

from __future__ import annotations

import itertools

from repro.errors import ParameterError
from repro.uncertain.clique_prob import (
    clique_probability,
    is_clique,
    is_maximal_k_tau_clique,
)
from repro.uncertain.graph import Node, UncertainGraph
from repro.uncertain.possible_worlds import exact_degree_distribution
from repro.utils.validation import prob_at_least, validate_k, validate_tau

__all__ = [
    "brute_force_maximal_cliques",
    "brute_force_maximum_clique",
    "brute_force_tau_degree",
]

_MAX_NODES = 22


def brute_force_maximal_cliques(
    graph: UncertainGraph, k: int, tau: float
) -> set[frozenset[Node]]:
    """All maximal (k, tau)-cliques by testing every node subset.

    Only subsets of size ``k + 1`` and above are considered (Definition 2's
    strictly-greater size requirement).  Limited to graphs of at most
    22 nodes.
    """
    validate_k(k)
    tau = validate_tau(tau)
    nodes = graph.nodes()
    if len(nodes) > _MAX_NODES:
        raise ParameterError(
            f"brute force is limited to {_MAX_NODES} nodes, "
            f"graph has {len(nodes)}"
        )
    found: set[frozenset[Node]] = set()
    for size in range(k + 1, len(nodes) + 1):
        for subset in itertools.combinations(nodes, size):
            if not is_clique(graph, subset):
                continue
            if not prob_at_least(clique_probability(graph, subset), tau):
                continue
            if is_maximal_k_tau_clique(graph, subset, k, tau):
                found.add(frozenset(subset))
    return found


def brute_force_maximum_clique(
    graph: UncertainGraph, k: int, tau: float
) -> frozenset[Node] | None:
    """One maximum (k, tau)-clique, or ``None`` when none exists.

    Scans subset sizes from large to small so the first hit is a maximum;
    ties are broken by the deterministic combination order.
    """
    validate_k(k)
    tau = validate_tau(tau)
    nodes = graph.nodes()
    if len(nodes) > _MAX_NODES:
        raise ParameterError(
            f"brute force is limited to {_MAX_NODES} nodes, "
            f"graph has {len(nodes)}"
        )
    for size in range(len(nodes), k, -1):
        for subset in itertools.combinations(nodes, size):
            if is_clique(graph, subset) and prob_at_least(
                clique_probability(graph, subset), tau
            ):
                return frozenset(subset)
    return None


def brute_force_tau_degree(
    graph: UncertainGraph, node: Node, tau: float
) -> int:
    """tau-degree from the exact degree distribution (Definition 4)."""
    tau = validate_tau(tau)
    dist = exact_degree_distribution(graph, node)
    survival = 1.0
    best = 0
    for r in range(1, len(dist)):
        survival -= dist[r - 1]
        if prob_at_least(survival, tau):
            best = r
        else:
            break
    return best
