"""Maximum (k, tau)-clique search: MaxUC, MaxRDS and MaxUC+ (Section V).

All three return one largest (k, tau)-clique (or ``None`` when the graph
has none); they differ in their pruning machinery:

* :func:`max_uc` — branch-and-bound over the same set-enumeration tree as
  the enumerator, pruning only with the candidate-set-size bound
  ``|R| + |C|``;
* :func:`max_rds` — the Miao et al. [21] baseline: Russian Doll Search
  (Ostergard [44]) adapted to tau-cliques.  Subproblem ``i`` searches the
  suffix ``{v_i, ..., v_n}`` of a fixed ordering and may improve on
  subproblem ``i + 1`` by at most one node, which both caps the work per
  subproblem and supplies the ``c[j]`` suffix bounds;
* :func:`max_uc_plus` — the paper's algorithm: (Top_k, tau)-core
  preprocessing, cut optimization, in-search TopKCore pruning, and the
  three color-based upper bounds of :mod:`repro.core.bounds` applied
  cheapest-first (basic, then advanced I, then advanced II).

Size semantics follow Definition 2: a valid answer has more than ``k``
nodes, so searches start from an incumbent size of ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Literal

from repro.core.bounds import (
    advanced_color_bound_one,
    advanced_color_bound_two,
    basic_color_bound,
)
from repro.core.kernel import node_sort_key
from repro.core.topk_core import topk_core
from repro.uncertain.graph import Node, UncertainGraph
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    prob_at_least,
    threshold_floor,
    validate_k,
    validate_tau,
)

__all__ = [
    "MaximumSearchStats",
    "maximum_clique",
    "max_uc",
    "max_rds",
    "max_uc_plus",
]


@dataclass
class MaximumSearchStats:
    """Counters exposed for the experiment harness (Fig. 5).

    ``timings`` rides along as a *non-field* attribute (attached in
    ``__post_init__``) holding per-phase wall-clock seconds; keeping it
    out of the fields keeps ``asdict``/``==`` over the deterministic
    counters only (the parity suite and the bench check compare those).
    """

    search_calls: int = 0
    size_bound_prunes: int = 0
    basic_color_prunes: int = 0
    advanced_one_prunes: int = 0
    advanced_two_prunes: int = 0
    insearch_prunes: int = 0
    pivot_branches: int = 0
    pivot_skipped: int = 0
    best_size: int = 0

    def __post_init__(self) -> None:
        self.timings: Stopwatch = Stopwatch()

    def merge(self, other: "MaximumSearchStats") -> None:
        """Accumulate ``other`` into ``self``: every prune/call counter
        sums, ``best_size`` takes the max (it reports a result, not
        work), and phase timings sum lap-wise.  Used by the parallel
        layer to fold per-task counters back into the caller's stats and
        by the experiment harness to aggregate across runs."""
        for f in fields(self):
            if f.name == "best_size":
                self.best_size = max(self.best_size, other.best_size)
            else:
                setattr(
                    self, f.name,
                    getattr(self, f.name) + getattr(other, f.name),
                )
        for name, seconds in other.timings.laps.items():
            self.timings.add(name, seconds)


#: Single source of the node order lives in the kernel's compile step;
#: the alias keeps the historical name importable.
_node_sort_key = node_sort_key

#: Search-core selector for :func:`max_uc_plus` (same contract as
#: :data:`repro.core.enumeration.Engine`).  The branch-and-bound's
#: DFS-first output depends on branch order, so ``"pivot"`` runs the
#: exact bitset search (identical outputs and stats; the pivot counters
#: stay zero) — only the enumeration recursion pivots.
Engine = Literal["pivot", "bitset", "legacy"]


# ----------------------------------------------------------------------
# MaxUC: candidate-set-size bound only
# ----------------------------------------------------------------------

def max_uc(
    graph: UncertainGraph,
    k: int,
    tau: float,
    stats: MaximumSearchStats | None = None,
) -> frozenset[Node] | None:
    """Maximum (k, tau)-clique with only the ``|R| + |C|`` bound."""
    validate_k(k)
    tau = validate_tau(tau)
    stats = stats if stats is not None else MaximumSearchStats()
    min_size = k + 1
    tau_floor = threshold_floor(tau)

    best: list[Node] | None = None
    best_size = k  # incumbent: anything <= k nodes does not count

    def search(
        clique: list[Node],
        clique_prob: float,
        candidates: list[tuple[Node, float]],
    ) -> None:
        nonlocal best, best_size
        stats.search_calls += 1
        if len(clique) > best_size:
            best = list(clique)
            best_size = len(clique)
        index = 0
        while index < len(candidates):
            if len(clique) + len(candidates) - index <= best_size:
                stats.size_bound_prunes += 1
                return
            u, pi_u = candidates[index]
            index += 1
            new_prob = clique_prob * pi_u
            incident = graph.incident(u)
            new_candidates = []
            for v, pi_v in candidates[index:]:
                p = incident.get(v)
                if p is None:
                    continue
                pi = pi_v * p
                # Hot path: tau_floor = threshold_floor(tau) fast path.
                if new_prob * pi >= tau_floor:  # repro-lint: ignore[RPL001]
                    new_candidates.append((v, pi))
            clique.append(u)
            search(clique, new_prob, new_candidates)
            clique.pop()

    ordered = sorted(graph.nodes(), key=_node_sort_key)
    search([], 1.0, [(v, 1.0) for v in ordered])
    stats.best_size = best_size if best is not None else 0
    if best is None or len(best) < min_size:
        return None
    return frozenset(best)


# ----------------------------------------------------------------------
# MaxRDS: Russian Doll Search baseline (Miao et al. [21])
# ----------------------------------------------------------------------

def max_rds(
    graph: UncertainGraph,
    k: int,
    tau: float,
    stats: MaximumSearchStats | None = None,
) -> frozenset[Node] | None:
    """Maximum (k, tau)-clique via Russian Doll Search.

    Nodes are processed in their natural order (as the Miao et al.
    baseline does); subproblem ``i`` looks for tau-cliques containing
    ``v_i`` inside the suffix ``{v_i, ..., v_n}``.  Since a maximum tau-clique of suffix ``i``
    either avoids ``v_i`` (size ``c[i+1]``) or loses ``v_i`` to give a
    tau-clique of suffix ``i + 1`` (size ``<= c[i+1] + 1``), each
    subproblem only ever hunts for one specific target size and stops at
    the first witness.
    """
    validate_k(k)
    tau = validate_tau(tau)
    stats = stats if stats is not None else MaximumSearchStats()
    min_size = k + 1
    tau_floor = threshold_floor(tau)

    order = sorted(graph.nodes(), key=_node_sort_key)
    position = {v: i for i, v in enumerate(order)}
    n = len(order)
    c = [0] * (n + 1)
    best: list[Node] | None = None

    for i in range(n - 1, -1, -1):
        v = order[i]
        target = c[i + 1] + 1
        found = False

        def search(
            clique: list[Node],
            clique_prob: float,
            candidates: list[tuple[Node, float]],
        ) -> None:
            nonlocal best, found
            stats.search_calls += 1
            if found:
                return
            if best is None or len(clique) > len(best):
                best = list(clique)
            if len(clique) >= target:
                found = True
                return
            index = 0
            while index < len(candidates) and not found:
                if len(clique) + len(candidates) - index < target:
                    stats.size_bound_prunes += 1
                    return
                u, pi_u = candidates[index]
                index += 1
                # Suffix bound: everything after u lives in suffix
                # pos(u) + 1, so the extension cannot beat c[pos(u) + 1].
                if len(clique) + 1 + c[position[u] + 1] < target:
                    stats.size_bound_prunes += 1
                    return
                new_prob = clique_prob * pi_u
                incident = graph.incident(u)
                new_candidates = []
                for w, pi_w in candidates[index:]:
                    p = incident.get(w)
                    if p is None:
                        continue
                    pi = pi_w * p
                    # Hot path: tau_floor = threshold_floor(tau) fast path.
                    if new_prob * pi >= tau_floor:  # repro-lint: ignore[RPL001]
                        new_candidates.append((w, pi))
                clique.append(u)
                search(clique, new_prob, new_candidates)
                clique.pop()

        initial = []
        for w, p in sorted(
            graph.incident(v).items(), key=lambda item: position[item[0]]
        ):
            if position[w] > i and prob_at_least(p, tau):
                initial.append((w, p))
        search([v], 1.0, initial)
        c[i] = c[i + 1] + (1 if found else 0)

    stats.best_size = len(best) if best is not None else 0
    if best is None or len(best) < min_size:
        return None
    return frozenset(best)


# ----------------------------------------------------------------------
# MaxUC+: the paper's algorithm with all three color bounds
# ----------------------------------------------------------------------

def max_uc_plus(
    graph: UncertainGraph,
    k: int,
    tau: float,
    stats: MaximumSearchStats | None = None,
    use_advanced_one: bool = True,
    use_advanced_two: bool = True,
    insearch: bool = True,
    engine: Engine = "pivot",
    jobs: int | None = 1,
) -> frozenset[Node] | None:
    """Maximum (k, tau)-clique with core/cut pruning and color bounds.

    The ``use_advanced_*`` and ``insearch`` switches exist for the
    ablation benchmarks; the defaults reproduce the paper's ``MaxUC+``.
    ``engine="bitset"`` (default) runs the per-component search on the
    compiled kernel of :mod:`repro.core.kernel`; ``"legacy"`` keeps the
    original closure — both return identical cliques and stats.
    ``jobs`` fans the per-component searches over worker processes
    (``1`` in-process, ``None`` = ``os.cpu_count()``, ``REPRO_JOBS``
    overrides the default; bitset engine only — legacy stays sequential).
    Any ``jobs`` value returns the identical clique with identical stats
    counters; see :func:`repro.core.parallel.maximum_parallel` for how
    the sequential incumbent chain is reproduced exactly.

    One-shot convenience wrapper around the staged pipeline: repeated
    queries against the same graph should hold a
    :class:`repro.core.session.PreparedGraph` and call its
    :meth:`~repro.core.session.PreparedGraph.max_uc_plus`, which memoizes
    the prune / cut / compile artifacts across calls (outputs are
    bit-identical either way).
    """
    # Imported lazily: the session layer imports this module for the
    # stats type and the legacy search, so a top-level import would be a
    # cycle.
    from repro.core.session import PreparedGraph

    return PreparedGraph(graph).max_uc_plus(
        k, tau, stats=stats, use_advanced_one=use_advanced_one,
        use_advanced_two=use_advanced_two, insearch=insearch,
        engine=engine, jobs=jobs,
    )


def _search_component_legacy(
    component: UncertainGraph,
    colors: dict[Node, int],
    k: int,
    tau: float,
    tau_floor: float,
    min_size: int,
    best: list[Node] | None,
    best_size: int,
    use_advanced_one: bool,
    use_advanced_two: bool,
    insearch: bool,
    stats: MaximumSearchStats,
) -> tuple[list[Node] | None, int]:
    """MaxUC+ search of one component with the legacy dict-of-dicts
    recursion (the historical in-driver closure, extracted so the staged
    pipeline can call it per component).

    ``best`` / ``best_size`` seed the incumbent; the improved pair is
    returned (``best`` unchanged when the component cannot beat it).
    """

    def search(
        clique: list[Node],
        clique_prob: float,
        candidates: list[tuple[Node, float]],
    ) -> None:
        nonlocal best, best_size
        stats.search_calls += 1
        if len(clique) > best_size:
            best = list(clique)
            best_size = len(clique)
        if not candidates:
            return

        # Bounds, cheapest first (Section V implementation details).
        if len(clique) + basic_color_bound(
            colors, (v for v, _ in candidates)
        ) <= best_size:
            stats.basic_color_prunes += 1
            return
        if use_advanced_one and len(clique) + advanced_color_bound_one(
            colors, candidates, clique_prob, tau
        ) <= best_size:
            stats.advanced_one_prunes += 1
            return
        if (
            use_advanced_two
            and clique
            and len(clique) + advanced_color_bound_two(
                component, colors, clique, candidates, clique_prob, tau
            ) <= best_size
        ):
            stats.advanced_two_prunes += 1
            return

        if insearch and len(clique) < min_size:
            members = clique + [v for v, _ in candidates]
            sub = component.induced_subgraph(members)
            # Transient per-branch subgraph inside the legacy recursion:
            # pinned to the legacy peel so the legacy engine stays
            # self-contained (no prune-kernel compile per branch).
            core = topk_core(  # repro-lint: ignore[RPL008]
                sub, k, tau, fixed=set(clique), engine="legacy"
            )
            if not core.contains_fixed or len(core.nodes) < min_size:
                stats.insearch_prunes += 1
                return
            if len(core.nodes) < len(members):
                stats.insearch_prunes += 1
                candidates = [
                    (v, pi) for v, pi in candidates if v in core.nodes
                ]

        index = 0
        while index < len(candidates):
            if len(clique) + len(candidates) - index <= best_size:
                stats.size_bound_prunes += 1
                return
            u, pi_u = candidates[index]
            index += 1
            new_prob = clique_prob * pi_u
            incident = component.incident(u)
            new_candidates = []
            for v, pi_v in candidates[index:]:
                p = incident.get(v)
                if p is None:
                    continue
                pi = pi_v * p
                # Hot path: tau_floor = threshold_floor(tau) fast path.
                if new_prob * pi >= tau_floor:  # repro-lint: ignore[RPL001]
                    new_candidates.append((v, pi))
            clique.append(u)
            search(clique, new_prob, new_candidates)
            clique.pop()

    ordered = sorted(component.nodes(), key=_node_sort_key)
    search([], 1.0, [(v, 1.0) for v in ordered])
    return best, best_size


Algorithm = Literal["max_uc", "max_rds", "max_uc_plus"]

_ALGORITHMS = {
    "max_uc": max_uc,
    "max_rds": max_rds,
    "max_uc_plus": max_uc_plus,
}


def maximum_clique(
    graph: UncertainGraph,
    k: int,
    tau: float,
    algorithm: Algorithm = "max_uc_plus",
    stats: MaximumSearchStats | None = None,
) -> frozenset[Node] | None:
    """Front door: find one maximum (k, tau)-clique with the chosen
    algorithm (default: the paper's ``MaxUC+``)."""
    try:
        impl = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; "
            f"expected one of {sorted(_ALGORITHMS)}"
        ) from None
    return impl(graph, k, tau, stats=stats)
