"""Independent verification of clique-search output.

Production users of an exact algorithm still want cheap, independent
evidence that a result set is right.  This module cross-checks an
enumeration result against the definitions using only the primitive
predicates (never the search machinery): exact products, maximality by
single-node extension, pairwise non-containment, and — optionally — a
Monte-Carlo re-estimate of each clique probability from sampled possible
worlds, which exercises a completely different code path than the
closed-form product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.uncertain.clique_prob import (
    clique_probability,
    is_clique,
    is_maximal_k_tau_clique,
)
from repro.uncertain.graph import Node, UncertainGraph
from repro.uncertain.possible_worlds import estimate_clique_probability
from repro.utils.validation import prob_at_least, validate_k, validate_tau

__all__ = ["VerificationReport", "verify_maximal_cliques"]


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_maximal_cliques`.

    ``ok`` is True when every check passed; the lists carry the offending
    cliques otherwise.
    """

    checked: int = 0
    not_cliques: list[frozenset[Node]] = field(default_factory=list)
    below_tau: list[frozenset[Node]] = field(default_factory=list)
    too_small: list[frozenset[Node]] = field(default_factory=list)
    not_maximal: list[frozenset[Node]] = field(default_factory=list)
    contained_pairs: list[tuple[frozenset[Node], frozenset[Node]]] = field(
        default_factory=list
    )
    sampling_outliers: list[frozenset[Node]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.not_cliques
            or self.below_tau
            or self.too_small
            or self.not_maximal
            or self.contained_pairs
            or self.sampling_outliers
        )

    def summary(self) -> str:
        """One-line human summary."""
        if self.ok:
            return f"all {self.checked} cliques verified"
        parts = []
        for label, items in (
            ("non-cliques", self.not_cliques),
            ("below tau", self.below_tau),
            ("too small", self.too_small),
            ("non-maximal", self.not_maximal),
            ("containment violations", self.contained_pairs),
            ("sampling outliers", self.sampling_outliers),
        ):
            if items:
                parts.append(f"{len(items)} {label}")
        return f"{self.checked} checked; FAILED: " + ", ".join(parts)


def verify_maximal_cliques(
    graph: UncertainGraph,
    cliques: Iterable[frozenset[Node]],
    k: int,
    tau: float,
    sample_probability: bool = False,
    samples: int = 4000,
    sampling_tolerance: float = 0.08,
    seed: int | None = 0,
) -> VerificationReport:
    """Check that ``cliques`` is a plausible maximal-(k, tau)-clique set.

    Verifies for each reported set: it is a clique of ``~G``, has more
    than ``k`` nodes, satisfies ``CPr >= tau``, is maximal (no single-node
    extension keeps ``CPr >= tau``), and that no reported set contains
    another.  With ``sample_probability=True``, additionally re-estimates
    each ``CPr`` by Monte Carlo and flags estimates further than
    ``sampling_tolerance`` from the closed form.

    This validates soundness and internal consistency; completeness
    (no maximal clique missing) requires the brute-force oracle and is
    only feasible on small graphs.
    """
    validate_k(k)
    tau = validate_tau(tau)
    report = VerificationReport()
    seen: list[frozenset[Node]] = []
    for clique in cliques:
        report.checked += 1
        members = sorted(clique, key=str)
        if not is_clique(graph, members):
            report.not_cliques.append(clique)
            continue
        if len(members) <= k:
            report.too_small.append(clique)
        prob = clique_probability(graph, members)
        if not prob_at_least(prob, tau):
            report.below_tau.append(clique)
        elif not is_maximal_k_tau_clique(graph, members, k, tau):
            report.not_maximal.append(clique)
        if sample_probability:
            estimate = estimate_clique_probability(
                graph, members, samples=samples, seed=seed
            )
            if abs(estimate - prob) > sampling_tolerance:
                report.sampling_outliers.append(clique)
        for other in seen:
            if clique < other:
                report.contained_pairs.append((clique, other))
            elif other < clique:
                report.contained_pairs.append((other, clique))
        seen.append(clique)
    return report
