"""Command-line experiment runner: ``python -m repro`` / ``repro-experiments``.

Examples::

    python -m repro list
    python -m repro table1
    python -m repro fig2 --scale 0.5
    python -m repro fig3 --scale 0.25 --no-baselines
    python -m repro all --scale 0.25 --out results.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments.harness import ExperimentResult
from repro.experiments import (
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2,
)

__all__ = ["main"]

#: An experiment runner: parsed CLI options -> rendered result rows.
Runner = Callable[[argparse.Namespace], ExperimentResult]


#: Paper-terminology aliases resolved to figure names before dispatch
#: (kept out of the runners dict so ``all`` does not run them twice).
_ALIASES = {"dpcore": "fig2", "pruning": "fig4"}


def _runners() -> dict[str, Runner]:
    """Experiment name -> runner accepting the parsed CLI options."""
    return {
        "table1": lambda opts: run_table1(scale=opts.scale),
        "fig2": lambda opts: run_fig2(
            scale=opts.scale, engine=opts.prune_engine
        ),
        "fig3": lambda opts: run_fig3(
            scale=opts.scale, include_baseline=not opts.no_baselines
        ),
        "fig4": lambda opts: run_fig4(
            scale=opts.scale, engine=opts.prune_engine
        ),
        "fig5": lambda opts: run_fig5(
            scale=opts.scale, include_baselines=not opts.no_baselines
        ),
        "fig6": lambda opts: run_fig6(
            scale=opts.scale, include_baselines=not opts.no_baselines
        ),
        "fig7": lambda opts: run_fig7(
            scale=opts.scale, include_baselines=not opts.no_baselines
        ),
        "fig8": lambda opts: run_fig8(
            scale=opts.scale, include_baselines=not opts.no_baselines
        ),
        "table2": lambda opts: run_table2(scale=opts.scale),
        "fig9": lambda opts: run_fig9(scale=opts.scale),
    }


def _run_mine(opts: argparse.Namespace) -> int:
    """The ``mine`` command: clique search on a user-supplied edge list."""
    from repro.core.enumeration import muce_plus_plus
    from repro.core.maximum import max_uc_plus
    from repro.core.topr import top_r_maximal_cliques
    from repro.uncertain.clique_prob import clique_probability
    from repro.uncertain.io import read_edge_list

    graph = read_edge_list(opts.input)
    print(
        f"loaded {graph.num_nodes} nodes / {graph.num_edges} edges; "
        f"k={opts.k}, tau={opts.tau}, mode={opts.mode}"
    )
    if opts.mode == "maximum":
        best = max_uc_plus(graph, opts.k, opts.tau)
        if best is None:
            print("no (k, tau)-clique found")
        else:
            prob = clique_probability(graph, best)
            print(f"{len(best)} nodes, CPr={prob:.6g}: {sorted(map(str, best))}")
        return 0
    if opts.mode == "top":
        cliques = top_r_maximal_cliques(graph, opts.top, opts.k, opts.tau)
    else:
        cliques = muce_plus_plus(graph, opts.k, opts.tau)
    count = 0
    for clique in cliques:
        count += 1
        prob = clique_probability(graph, clique)
        print(f"{len(clique)} nodes, CPr={prob:.6g}: {sorted(map(str, clique))}")
    print(f"{count} maximal (k, tau)-clique(s)")
    return 0


def _parse_jobs(raw: str | None) -> int | None:
    """Map the CLI ``--jobs`` string to the search drivers' parameter
    (``'auto'`` means "all cores", which the drivers spell ``None``)."""
    if raw is None:
        return 1
    if raw.strip().lower() in ("auto", "0"):
        return None
    return int(raw)


def _run_query(opts: argparse.Namespace) -> int:
    """The ``query`` command: anchored clique questions on an edge list."""
    from repro.core.queries import (
        cliques_containing,
        containing_clique_exists,
        is_extendable,
    )
    from repro.uncertain.clique_prob import clique_probability
    from repro.uncertain.io import _parse_node, read_edge_list

    graph = read_edge_list(opts.input)
    jobs = _parse_jobs(opts.jobs)
    print(
        f"loaded {graph.num_nodes} nodes / {graph.num_edges} edges; "
        f"k={opts.k}, tau={opts.tau}, query={opts.query}, "
        f"engine={opts.engine}, jobs={opts.jobs or 1}"
    )
    if opts.query == "containing":
        if not opts.node:
            print("query containing requires --node")
            return 2
        anchor = _parse_node(opts.node)
        count = 0
        for clique in cliques_containing(
            graph, anchor, opts.k, opts.tau,
            engine=opts.engine, jobs=jobs,
        ):
            count += 1
            prob = clique_probability(graph, clique)
            print(
                f"{len(clique)} nodes, CPr={prob:.6g}: "
                f"{sorted(map(str, clique))}"
            )
        print(f"{count} maximal (k, tau)-clique(s) containing {opts.node!r}")
        return 0
    if not opts.nodes:
        print(f"query {opts.query} requires --nodes")
        return 2
    # Anchor tokens get the same int-when-possible treatment as the edge
    # list itself, so `--node 1` matches the node the loader created.
    members = [_parse_node(part) for part in opts.nodes.split(",") if part]
    if opts.query == "extendable":
        answer = is_extendable(
            graph, members, opts.tau, engine=opts.engine, jobs=jobs
        )
        print(f"extendable: {answer}")
    else:
        answer = containing_clique_exists(
            graph, members, opts.k, opts.tau,
            engine=opts.engine, jobs=jobs,
        )
        print(f"containing clique exists: {answer}")
    return 0


def _run_dataset(opts: argparse.Namespace) -> int:
    """The ``dataset`` command: export a synthetic dataset edge list."""
    from repro.datasets.registry import DATASETS, load_dataset
    from repro.uncertain.io import write_edge_list

    if opts.name not in DATASETS:
        print(f"unknown dataset {opts.name!r}; known: {sorted(DATASETS)}")
        return 2
    graph = load_dataset(
        opts.name, scale=opts.scale, lam=opts.lam,
        distribution=opts.distribution,
    )
    write_edge_list(graph, opts.output)
    print(
        f"wrote {opts.name} (scale {opts.scale}): {graph.num_nodes} nodes, "
        f"{graph.num_edges} edges -> {opts.output}"
    )
    return 0


def _build_parser(runners: dict[str, Runner]) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Improved Algorithms "
            "for Maximal Clique Search in Uncertain Networks' (ICDE 2019), "
            "mine user graphs, or export synthetic datasets"
        ),
    )
    subcommands = [
        *runners, *_ALIASES,
        "all", "list", "mine", "query", "dataset", "report",
    ]
    parser.add_argument(
        "experiment",
        choices=subcommands,
        metavar="command",
        help=(
            "an experiment name (see 'list'; 'dpcore' and 'pruning' are "
            "aliases for fig2 and fig4), 'all', 'mine' (clique search on "
            "an edge list), 'query' (anchored clique questions on an "
            "edge list) or 'dataset' (export a synthetic dataset)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale factor (default 1.0; smaller is faster)",
    )
    parser.add_argument(
        "--no-baselines",
        action="store_true",
        help="skip slow baseline algorithms (MUCE, MaxUC, MaxRDS)",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        help=(
            "worker processes for the search phase (an integer, or "
            "'auto' for all cores); sets REPRO_JOBS so every search in "
            "the run inherits it"
        ),
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="also append the report to this file",
    )
    # mine options
    parser.add_argument("--input", help="edge list ('u v p' lines) to mine")
    parser.add_argument("-k", type=int, default=10, help="clique parameter k")
    parser.add_argument(
        "--tau", type=float, default=0.1, help="probability threshold tau"
    )
    parser.add_argument(
        "--mode",
        choices=("enumerate", "maximum", "top"),
        default="enumerate",
        help="mine mode: all maximal cliques, one maximum, or top-r",
    )
    parser.add_argument(
        "--top", type=int, default=5, help="r for --mode top"
    )
    # query options (--engine also applies to 'mine')
    parser.add_argument(
        "--engine",
        choices=("pivot", "bitset", "legacy"),
        default="pivot",
        help=(
            "search engine for the query command (default pivot: the "
            "compiled kernel with absorbing Tomita pivoting; pivot and "
            "bitset also route pruning through the compiled arrays "
            "kernel)"
        ),
    )
    parser.add_argument(
        "--prune-engine",
        choices=("arrays", "legacy"),
        default="arrays",
        help=(
            "prune-peel engine for the dpcore/pruning experiments "
            "(default arrays: the compiled flat-CSR kernel, one "
            "lowering shared per dataset)"
        ),
    )
    parser.add_argument(
        "--query",
        choices=("containing", "extendable", "exists"),
        default="containing",
        help=(
            "query kind: cliques containing --node, whether --nodes is "
            "extendable, or whether a containing clique exists"
        ),
    )
    parser.add_argument(
        "--node", help="anchor node for --query containing"
    )
    parser.add_argument(
        "--nodes",
        help="comma-separated node set for --query extendable/exists",
    )
    # dataset options
    parser.add_argument("--name", help="dataset name for the export command")
    parser.add_argument(
        "--output", help="output path for the dataset export"
    )
    parser.add_argument(
        "--lam", type=float, default=2.0, help="exponential-model lambda"
    )
    parser.add_argument(
        "--distribution",
        choices=("exponential", "uniform"),
        default="exponential",
        help="probability model for the dataset export",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    runners = _runners()
    parser = _build_parser(runners)
    opts = parser.parse_args(argv)
    opts.experiment = _ALIASES.get(opts.experiment, opts.experiment)

    if opts.jobs is not None:
        # The experiment runners call the search drivers with their
        # default jobs=1, which defers to REPRO_JOBS — exporting it here
        # parallelizes every search in the run without threading a
        # parameter through each harness function.
        import os

        os.environ["REPRO_JOBS"] = str(opts.jobs)

    if opts.experiment == "list":
        for name in runners:
            print(name)
        return 0
    if opts.experiment == "mine":
        if not opts.input:
            parser.error("mine requires --input")
        return _run_mine(opts)
    if opts.experiment == "query":
        if not opts.input:
            parser.error("query requires --input")
        return _run_query(opts)
    if opts.experiment == "dataset":
        if not opts.name or not opts.output:
            parser.error("dataset requires --name and --output")
        return _run_dataset(opts)
    if opts.experiment == "report":
        from repro.experiments.report import generate_report

        text = generate_report(
            scale=opts.scale, include_baselines=not opts.no_baselines
        )
        print(text)
        if opts.out:
            with open(opts.out, "w", encoding="utf-8") as handle:
                handle.write(text)
        return 0

    names = list(runners) if opts.experiment == "all" else [opts.experiment]
    reports: list[str] = []
    for name in names:
        start = time.perf_counter()
        result = runners[name](opts)
        elapsed = time.perf_counter() - start
        report = result.render() + f"\n(ran in {elapsed:.1f}s)\n"
        print(report)
        reports.append(report)
    if opts.out:
        with open(opts.out, "a", encoding="utf-8") as handle:
            handle.write("\n".join(reports))
    return 0


if __name__ == "__main__":
    sys.exit(main())
