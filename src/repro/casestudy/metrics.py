"""TP / FP / precision metrics for protein-complex detection (Table II).

Following the paper (which follows Kollios et al. [32] and Qiu et al.
[33]): a *predicted interaction* is a protein pair appearing together in a
predicted complex; it is a true positive when the pair also co-occurs in
some ground-truth complex.  ``precision = TP / (TP + FP)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.uncertain.graph import Node

__all__ = ["ComplexDetectionScore", "score_predicted_complexes"]


@dataclass(frozen=True)
class ComplexDetectionScore:
    """One Table II row."""

    method: str
    true_positives: int
    false_positives: int
    predicted_complexes: int

    @property
    def precision(self) -> float:
        """``TP / (TP + FP)``; 0.0 when nothing was predicted."""
        total = self.true_positives + self.false_positives
        if total == 0:
            return 0.0
        return self.true_positives / total


def _pair_set(complexes: Iterable[frozenset[Node]]) -> set[frozenset[Node]]:
    """All unordered within-complex protein pairs."""
    pairs: set[frozenset[Node]] = set()
    for complex_ in complexes:
        members = sorted(complex_, key=repr)
        for u, v in itertools.combinations(members, 2):
            pairs.add(frozenset((u, v)))
    return pairs


def score_predicted_complexes(
    predicted: Sequence[frozenset[Node]],
    ground_truth: Sequence[frozenset[Node]],
    method: str = "",
) -> ComplexDetectionScore:
    """Score predicted complexes against the ground-truth catalogue.

    Interactions predicted by several complexes are counted once, matching
    the set semantics of the reference evaluation.
    """
    predicted_pairs = _pair_set(predicted)
    truth_pairs = _pair_set(ground_truth)
    tp = len(predicted_pairs & truth_pairs)
    fp = len(predicted_pairs) - tp
    return ComplexDetectionScore(
        method=method,
        true_positives=tp,
        false_positives=fp,
        predicted_complexes=len(predicted),
    )
