"""Protein-complex detection case study (Section VI-C).

Detects protein complexes in an uncertain PPI network with the paper's
MUCE++-based approach and compares it against two clustering baselines
(USCAN-like structural clustering and PCluster-like probabilistic
clustering) on the TP/FP/precision metrics the paper reports in Table II.
"""

from repro.casestudy.metrics import (
    ComplexDetectionScore,
    score_predicted_complexes,
)
from repro.casestudy.complexes import detect_complexes_muce
from repro.casestudy.uscan import uscan_clusters
from repro.casestudy.pcluster import pcluster_clusters

__all__ = [
    "ComplexDetectionScore",
    "score_predicted_complexes",
    "detect_complexes_muce",
    "uscan_clusters",
    "pcluster_clusters",
]
