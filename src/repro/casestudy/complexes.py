"""MUCE++-based protein-complex detection (the paper's method).

The paper's case study treats every maximal (k, tau)-clique of the PPI
network as a predicted protein complex: complexes are small, cohesive and
high-confidence, which is exactly what a maximal (k, tau)-clique captures.
"""

from __future__ import annotations

from repro.core.enumeration import muce_plus_plus
from repro.uncertain.graph import Node, UncertainGraph

__all__ = ["detect_complexes_muce"]


def detect_complexes_muce(
    graph: UncertainGraph, k: int = 6, tau: float = 0.1
) -> list[frozenset[Node]]:
    """Predict protein complexes as maximal (k, tau)-cliques.

    The defaults suit the scaled synthetic CORE analog; the paper uses
    ``k = 10, tau = 0.1`` on the full Krogan network (see EXPERIMENTS.md
    for the scaling discussion).
    """
    return list(muce_plus_plus(graph, k, tau))
