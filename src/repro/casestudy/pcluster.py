"""PCluster-like baseline: probabilistic pivot clustering.

A re-implementation of the comparator the paper calls PCluster (Kollios et
al. [32], "Clustering large probabilistic graphs").  Their pKwikCluster
algorithm adapts KwikCluster to edge probabilities: repeatedly pick an
unclustered pivot and absorb every unclustered neighbor whose edge
probability exceeds 1/2 (the edit-distance argument: such pairs are more
likely together than apart).

Like the original, it is randomized; the seed makes runs reproducible.  It
produces a partition into clusters, typically coarser than protein
complexes — the source of its lower Table II precision.
"""

from __future__ import annotations

import random

from repro.uncertain.graph import Node, UncertainGraph

__all__ = ["pcluster_clusters"]


def pcluster_clusters(
    graph: UncertainGraph,
    threshold: float = 0.5,
    min_size: int = 3,
    seed: int | None = 0,
) -> list[frozenset[Node]]:
    """Partition the graph with pKwikCluster-style pivoting.

    ``threshold`` is the absorb probability cutoff (1/2 in the original
    analysis); clusters smaller than ``min_size`` are dropped from the
    output, matching how the case study only scores non-trivial complexes.
    """
    rng = random.Random(seed)
    order = graph.nodes()
    rng.shuffle(order)
    clustered: set[Node] = set()
    clusters: list[frozenset[Node]] = []
    for pivot in order:
        if pivot in clustered:
            continue
        members = {pivot}
        for v, p in graph.incident(pivot).items():
            if v not in clustered and p > threshold:
                members.add(v)
        clustered.update(members)
        if len(members) >= min_size:
            clusters.append(frozenset(members))
    return clusters
