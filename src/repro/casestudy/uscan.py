"""USCAN-like baseline: structural clustering on an uncertain graph.

A faithful simplified re-implementation of the comparator the paper calls
USCAN (Qiu et al. [33], itself an uncertain-graph generalisation of SCAN).
Structural similarity between adjacent nodes is evaluated in expectation
over the edge probabilities; nodes with enough similar neighbors become
*cores*, cores reaching each other through similar edges form clusters, and
border nodes attach to a neighboring core's cluster.

Being a clustering method it tends to emit larger, looser groups than
maximal (k, tau)-cliques — which is exactly why its precision in Table II
trails MUCE++.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import ParameterError
from repro.uncertain.graph import Node, UncertainGraph

__all__ = ["uscan_clusters", "expected_structural_similarity"]


def expected_structural_similarity(
    graph: UncertainGraph, u: Node, v: Node
) -> float:
    """Expected structural (cosine) similarity of two adjacent nodes.

    The deterministic SCAN similarity is
    ``|N[u] & N[v]| / sqrt(|N[u]| |N[v]|)`` over closed neighborhoods; here
    every membership is weighted by its edge probability, giving the
    expected intersection size over the possible worlds divided by the
    geometric mean of expected neighborhood sizes.
    """
    u_inc = graph.incident(u)
    v_inc = graph.incident(v)
    if v not in u_inc:
        return 0.0
    p_uv = u_inc[v]
    # Closed neighborhoods: u and v always belong to their own.
    common = 2.0 * p_uv  # u in N[v] (via the edge) and v in N[u]
    for w, p_uw in u_inc.items():
        if w == v:
            continue
        p_vw = v_inc.get(w)
        if p_vw is not None:
            common += p_uw * p_vw
    size_u = 1.0 + sum(u_inc.values())
    size_v = 1.0 + sum(v_inc.values())
    return common / math.sqrt(size_u * size_v)


def uscan_clusters(
    graph: UncertainGraph,
    epsilon: float = 0.5,
    mu: int = 3,
    min_size: int = 3,
) -> list[frozenset[Node]]:
    """Cluster the uncertain graph SCAN-style.

    ``epsilon`` is the similarity threshold, ``mu`` the minimum number of
    epsilon-similar neighbors (including the node itself) for a core, and
    ``min_size`` filters out trivial clusters from the output.
    """
    if not 0.0 < epsilon <= 1.0:
        raise ParameterError(f"epsilon must be in (0, 1], got {epsilon}")
    if mu < 2:
        raise ParameterError(f"mu must be at least 2, got {mu}")

    # Epsilon-neighborhoods (self always included, as in SCAN).
    eps_nbrs: dict[Node, set[Node]] = {}
    similarity_cache: dict[frozenset[Node], float] = {}
    for u in graph:
        similar = {u}
        for v in graph.neighbors(u):
            key = frozenset((u, v))
            sim = similarity_cache.get(key)
            if sim is None:
                sim = expected_structural_similarity(graph, u, v)
                similarity_cache[key] = sim
            if sim >= epsilon:
                similar.add(v)
        eps_nbrs[u] = similar

    cores = {u for u, similar in eps_nbrs.items() if len(similar) >= mu}

    # Clusters: connected components of cores via epsilon-similar links,
    # expanded by each core's epsilon-neighborhood (borders).
    assigned: dict[Node, int] = {}
    clusters: list[set[Node]] = []
    for seed in cores:
        if seed in assigned:
            continue
        cluster_id = len(clusters)
        members: set[Node] = set()
        queue = deque([seed])
        assigned[seed] = cluster_id
        while queue:
            core = queue.popleft()
            members.update(eps_nbrs[core])
            for v in eps_nbrs[core]:
                if v in cores and v not in assigned:
                    assigned[v] = cluster_id
                    queue.append(v)
        clusters.append(members)

    return [
        frozenset(members)
        for members in clusters
        if len(members) >= min_size
    ]
