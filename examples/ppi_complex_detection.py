"""Detect protein complexes in an uncertain PPI network (Section VI-C).

Run with::

    python examples/ppi_complex_detection.py

Reproduces the paper's case study at example scale: generate a synthetic
Krogan-CORE-like PPI network with planted ground-truth complexes, predict
complexes three ways (maximal (k, tau)-cliques via MUCE++, USCAN-like
structural clustering, PCluster-like pivot clustering), and compare their
TP / FP / precision exactly as the paper's Table II does.
"""

from __future__ import annotations

from repro.casestudy import (
    detect_complexes_muce,
    pcluster_clusters,
    score_predicted_complexes,
    uscan_clusters,
)
from repro.datasets import ppi_network


def main() -> None:
    network = ppi_network(
        n_proteins=500,
        n_complexes=20,
        background_interactions=800,
        seed=7,
    )
    graph = network.graph
    truth = list(network.complexes)
    print(
        f"PPI network: {graph.num_nodes} proteins, "
        f"{graph.num_edges} scored interactions, "
        f"{len(truth)} ground-truth complexes"
    )

    k, tau = 6, 0.1
    predictions = {
        "MUCE++": detect_complexes_muce(graph, k=k, tau=tau),
        "USCAN": uscan_clusters(graph),
        "PCluster": pcluster_clusters(graph, seed=7),
    }

    print(f"\n{'method':10s} {'complexes':>9s} {'TP':>6s} {'FP':>6s} "
          f"{'precision':>9s}")
    for method, predicted in predictions.items():
        score = score_predicted_complexes(predicted, truth, method=method)
        print(
            f"{method:10s} {score.predicted_complexes:9d} "
            f"{score.true_positives:6d} {score.false_positives:6d} "
            f"{score.precision:9.3f}"
        )

    print(
        "\nAs in the paper, the clique-based detector is far more precise:"
        "\nclustering methods emit large loose clusters whose many internal"
        "\npairs are not real complex interactions."
    )


if __name__ == "__main__":
    main()
