"""Tour of maximum (k, tau)-clique search and its upper bounds.

Run with::

    python examples/maximum_clique_tour.py

Generates a communication network (the AskUbuntu-style workload of the
paper), then:

1. finds one maximum (k, tau)-clique with all three algorithms and checks
   they agree on the size;
2. shows the pruning statistics — how often each color-based upper bound
   of Section V closed a search branch;
3. sweeps tau to show how the maximum clique size responds to the
   reliability requirement.
"""

from __future__ import annotations

import time

from repro import (
    MaximumSearchStats,
    clique_probability,
    max_rds,
    max_uc,
    max_uc_plus,
)
from repro.datasets import communication_network


def main() -> None:
    graph = communication_network(
        n_users=1200,
        threads=3600,
        groups=12,
        seed=99,
    )
    k, tau = 8, 0.05
    print(
        f"communication network: {graph.num_nodes} users, "
        f"{graph.num_edges} edges; searching k={k}, tau={tau}"
    )

    print("\nalgorithm comparison:")
    sizes = {}
    for name, algorithm in (
        ("MaxUC+", max_uc_plus),
        ("MaxRDS", max_rds),
        ("MaxUC", max_uc),
    ):
        start = time.perf_counter()
        clique = algorithm(graph, k, tau)
        elapsed = time.perf_counter() - start
        sizes[name] = len(clique) if clique else 0
        print(f"  {name:8s} size={sizes[name]:2d}  {elapsed:7.3f}s")
    assert len(set(sizes.values())) == 1, "algorithms disagree!"

    stats = MaximumSearchStats()
    clique = max_uc_plus(graph, k, tau, stats=stats)
    assert clique is not None
    print(
        f"\nMaxUC+ search detail: {stats.search_calls} calls; prunes by "
        f"basic color bound {stats.basic_color_prunes}, advanced bound I "
        f"{stats.advanced_one_prunes}, advanced bound II "
        f"{stats.advanced_two_prunes}, candidate-size "
        f"{stats.size_bound_prunes}"
    )
    print(
        f"winner: {len(clique)} nodes, "
        f"CPr = {clique_probability(graph, clique):.4f}"
    )

    print("\nmaximum clique size as tau varies:")
    for tau_value in (0.01, 0.05, 0.1, 0.3, 0.6, 0.9):
        best = max_uc_plus(graph, k, tau_value)
        size = len(best) if best else 0
        print(f"  tau={tau_value:<5g} -> size {size}")


if __name__ == "__main__":
    main()
