"""Quickstart: build a small uncertain graph and mine its cliques.

Run with::

    python examples/quickstart.py

Builds the kind of toy uncertain graph the paper's running example uses
(two overlapping high-probability groups plus weak bridges), then walks
through the library's three entry points: core-based pruning, maximal
(k, tau)-clique enumeration, and maximum (k, tau)-clique search.
"""

from __future__ import annotations

import itertools

from repro import (
    UncertainGraph,
    clique_probability,
    dp_core_plus,
    max_uc_plus,
    muce_plus_plus,
    tau_degree,
    topk_core,
)


def build_toy_graph() -> UncertainGraph:
    """Two strong groups of four, loosely attached to a weak hub."""
    graph = UncertainGraph()
    group_a = ["a1", "a2", "a3", "a4"]
    group_b = ["b1", "b2", "b3", "b4"]
    for group in (group_a, group_b):
        for u, v in itertools.combinations(group, 2):
            graph.add_edge(u, v, 0.95)
    # A weak hub connected into both groups with low-probability edges.
    for v in ("a1", "a2", "b1", "b2"):
        graph.add_edge("hub", v, 0.30)
    # One weak bridge between the groups.
    graph.add_edge("a4", "b4", 0.25)
    return graph


def main() -> None:
    graph = build_toy_graph()
    k, tau = 3, 0.7
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"parameters: k={k}, tau={tau} (cliques must have > {k} nodes)")

    print("\ntau-degrees (Definition 4):")
    for node in sorted(graph.nodes()):
        print(f"  {node:4s} tau-deg = {tau_degree(graph, node, tau)}")

    core = dp_core_plus(graph, k, tau)
    print(f"\n(k, tau)-core (Algorithm 2): {sorted(core)}")

    survivors = topk_core(graph, k, tau).nodes
    print(f"(Top_k, tau)-core (Algorithm 3): {sorted(survivors)}")
    print("  -> the weak hub is pruned before any search happens")

    print("\nmaximal (k, tau)-cliques (MUCE++):")
    for clique in muce_plus_plus(graph, k, tau):
        members = sorted(clique)
        print(
            f"  {members}  CPr = "
            f"{clique_probability(graph, members):.4f}"
        )

    best = max_uc_plus(graph, k, tau)
    assert best is not None
    print(f"\nmaximum (k, tau)-clique (MaxUC+): {sorted(best)}")


if __name__ == "__main__":
    main()
