"""Find tightly-knit research groups in an uncertain co-authorship network.

Run with::

    python examples/collaboration_communities.py

This is the workload the paper's introduction motivates: the DBLP-style
network weights every co-authorship edge by the number of joint papers and
converts it to an existence probability with ``p = 1 - exp(-w / 2)``.
Maximal (k, tau)-cliques are then *reliable* research groups — sets of
authors who all collaborated with one another, with high joint confidence.

The example also shows the pruning funnel the paper's Section III builds:
graph -> (k, tau)-core -> (Top_k, tau)-core -> cut-optimized components.
"""

from __future__ import annotations

from collections import Counter

from repro import (
    EnumerationStats,
    clique_probability,
    cut_optimize,
    dp_core_plus,
    muce_plus_plus,
    topk_core,
)
from repro.datasets import collaboration_network


def main() -> None:
    k, tau = 8, 0.1
    graph = collaboration_network(
        n_authors=1200,
        hot_teams=15,
        casual_teams=3600,
        seed=42,
    )
    print(
        f"co-authorship network: {graph.num_nodes} authors, "
        f"{graph.num_edges} weighted collaborations"
    )

    # --- the pruning funnel -------------------------------------------
    core = dp_core_plus(graph, k, tau)
    print(f"(k, tau)-core keeps {len(core)} authors")

    survivors = topk_core(graph, k, tau).nodes
    print(f"(Top_k, tau)-core keeps {len(survivors)} authors")

    pruned = graph.induced_subgraph(survivors)
    cut = cut_optimize(pruned, k, tau)
    sizes = sorted(
        (c.num_nodes for c in cut.components), reverse=True
    )
    print(
        f"cut optimization removed {cut.edges_removed} bridge edges, "
        f"leaving components of sizes {sizes[:8]}..."
    )

    # --- enumerate the research groups --------------------------------
    stats = EnumerationStats()
    groups = list(muce_plus_plus(graph, k, tau, stats=stats))
    print(
        f"\nfound {len(groups)} maximal ({k}, {tau})-cliques "
        f"in {stats.search_calls} search calls"
    )

    histogram = Counter(len(g) for g in groups)
    print("group-size histogram:", dict(sorted(histogram.items())))

    print("\nthree most reliable groups:")
    by_reliability = sorted(
        groups,
        key=lambda g: clique_probability(graph, g),
        reverse=True,
    )
    for group in by_reliability[:3]:
        prob = clique_probability(graph, group)
        print(
            f"  {len(group)} authors, CPr = {prob:.3f}: "
            f"{sorted(group)[:6]}..."
        )


if __name__ == "__main__":
    main()
