"""Monitor reliable groups in a continuously-updating uncertain network.

Run with::

    python examples/dynamic_network_monitoring.py

A monitoring loop over a communication network where interactions never
stop arriving: ties strengthen on repeat contact, new edges appear, and
stale ones get dropped.  One :class:`PreparedGraph` session owns the
live graph and a session-mode :class:`KTauCoreMaintainer` absorbs every
update — each mutation bumps only the touched component's epoch, the
session's compiled artifact is delta-patched forward through the
mutation log instead of re-lowered, and the maintainer re-peels just
the dirty frontier before republishing the (k, tau)-core into the
session cache.  Between update bursts the monitoring queries
(enumeration, anchored membership) run over that same warm session, so
each window pays only for what actually changed.

The loop prints per-window invalidation accounting straight from the
session — delta patches vs full compiles, live vs stale cached
artifacts — and the final window cross-checks the incrementally
maintained core against a cold from-scratch recompute plus a sampled
verification of the enumerated cliques.
"""

from __future__ import annotations

import random

from repro import (
    KTauCoreMaintainer,
    PreparedGraph,
    cliques_containing,
    dp_core_plus,
    verify_maximal_cliques,
)
from repro.datasets import communication_network


def main() -> None:
    k, tau = 5, 0.1
    graph = communication_network(
        n_users=600, threads=1500, groups=8, group_size=(7, 10), seed=5
    )
    print(
        f"initial network: {graph.num_nodes} users, "
        f"{graph.num_edges} edges, {graph.num_components} components"
    )

    # One session owns the live graph; the maintainer mutates it in
    # place and republishes the maintained core at every new version.
    session = PreparedGraph(graph)
    maintainer = KTauCoreMaintainer(session, k, tau)
    live = session.graph
    print(f"initial ({k}, {tau})-core: {len(maintainer.core)} users")
    baseline_groups = sum(1 for _ in session.maximal_cliques(k, tau))
    print(f"initial reliable groups: {baseline_groups}")

    # --- continuous update stream, queried between bursts --------------
    rng = random.Random(11)
    inserted = dropped = 0
    for window in range(1, 6):
        for _ in range(60):
            u, v = rng.sample(range(600), 2)
            if live.has_edge(u, v):
                # Repeated interaction: strengthen the tie.
                p = live.probability(u, v)
                maintainer.set_probability(u, v, min(1.0, p + (1 - p) * 0.5))
            else:
                maintainer.add_edge(u, v, 0.39)
                inserted += 1
        # And one stale tie ages out per window.
        edges = list(live.edges())
        u, v, _ = edges[rng.randrange(len(edges))]
        maintainer.remove_edge(u, v)
        dropped += 1

        groups = sum(1 for _ in session.maximal_cliques(k, tau))
        info = session.cache_info()
        retention = session.retention_info()
        evicted = session.purge_stale()
        print(
            f"window {window}: core={len(maintainer.core)} "
            f"groups={groups} "
            f"compiles: {info['delta_patches']} delta-patched / "
            f"{info['full_compiles']} full; "
            f"cached artifacts: {retention['component_live']} live, "
            f"{evicted} stale purged"
        )

    print(
        f"\nstreamed {5 * 60} interactions "
        f"({inserted} new edges, {dropped} dropped)"
    )

    # --- anchored query on the warm session ----------------------------
    biggest = max(session.maximal_cliques(k, tau), key=len, default=None)
    if biggest is not None:
        anchor = sorted(biggest)[0]
        memberships = list(cliques_containing(live, anchor, k, tau))
        print(
            f"user {anchor} belongs to {len(memberships)} maximal "
            f"({k}, {tau})-clique(s) right now"
        )

    # --- verify the incremental state against a cold recompute ---------
    cold_core = dp_core_plus(live.copy(), k, tau)
    assert maintainer.core == frozenset(cold_core)
    print(f"incremental core matches cold recompute ({len(cold_core)} users)")

    cliques = list(session.maximal_cliques(k, tau))
    report = verify_maximal_cliques(
        live, cliques, k, tau, sample_probability=True, samples=2000
    )
    print(f"verification: {report.summary()}")
    assert report.ok


if __name__ == "__main__":
    main()
