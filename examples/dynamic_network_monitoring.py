"""Monitor reliable groups in an evolving uncertain network.

Run with::

    python examples/dynamic_network_monitoring.py

Shows the library's extension layer on a streaming scenario: interactions
arrive over time, a :class:`KTauCoreMaintainer` keeps the (k, tau)-core
current incrementally, anchored queries answer "which reliable groups does
this user belong to right now?", and the verification module double-checks
a final enumeration against the definitions.
"""

from __future__ import annotations

import random

from repro import (
    KTauCoreMaintainer,
    cliques_containing,
    muce_plus_plus,
    top_r_maximal_cliques,
    verify_maximal_cliques,
)
from repro.datasets import communication_network


def main() -> None:
    k, tau = 5, 0.1
    graph = communication_network(
        n_users=600, threads=1500, groups=8, group_size=(7, 10), seed=5
    )
    print(
        f"initial network: {graph.num_nodes} users, "
        f"{graph.num_edges} edges"
    )

    maintainer = KTauCoreMaintainer(graph, k, tau)
    print(f"initial (k, tau)-core: {len(maintainer.core)} users")

    # --- stream of new interactions ------------------------------------
    rng = random.Random(11)
    work = maintainer.graph
    inserted = 0
    for _ in range(300):
        u, v = rng.sample(range(600), 2)
        if work.has_edge(u, v):
            # Repeated interaction: strengthen the tie.
            p = work.probability(u, v)
            boosted = min(1.0, p + (1 - p) * 0.5)
            maintainer.set_probability(u, v, boosted)
            work.set_probability(u, v, boosted)
        else:
            maintainer.add_edge(u, v, 0.39)
            work.add_edge(u, v, 0.39)
            inserted += 1
    print(
        f"after 300 streamed interactions ({inserted} new edges): "
        f"core has {len(maintainer.core)} users"
    )

    # --- anchored queries on the current graph -------------------------
    current = maintainer.graph
    biggest = top_r_maximal_cliques(current, 3, k, tau)
    print("\ntop-3 largest reliable groups right now:")
    for clique in biggest:
        print(f"  {len(clique)} users: {sorted(clique)[:8]}...")

    if biggest:
        anchor = next(iter(biggest[0]))
        memberships = list(cliques_containing(current, anchor, k, tau))
        print(
            f"\nuser {anchor} belongs to {len(memberships)} maximal "
            f"({k}, {tau})-clique(s)"
        )

    # --- verify a full enumeration -------------------------------------
    cliques = list(muce_plus_plus(current, k, tau))
    report = verify_maximal_cliques(
        current, cliques, k, tau, sample_probability=True, samples=2000
    )
    print(f"\nverification: {report.summary()}")
    assert report.ok


if __name__ == "__main__":
    main()
